//! The pool of mining algorithms for simple association rules (§4.3.1).
//!
//! Algorithm interoperability is a design goal of the architecture: every
//! algorithm consumes the same [`SimpleInput`] (encoded groups of large
//! items) and produces the same large-itemset inventory, so they can be
//! swapped behind the core operator without the rest of the kernel
//! noticing. The pool contains:
//!
//! * [`apriori::AprioriGidList`] — the paper's own description: support
//!   via lists of group identifiers attached to each itemset;
//! * [`apriori::AprioriCount`] — classical counting Apriori \[AIS93/AS94\];
//! * [`dhp::Dhp`] — hash-based pruning of candidate pairs \[PSY95\];
//! * [`partition::Partition`] — two-pass partitioning \[SON95\];
//! * [`sampling::Sampling`] — sample + negative border \[Toi96\];
//! * [`eclat::Eclat`] — depth-first vertical mining;
//! * [`fpgrowth::FpGrowth`] — pattern-growth without candidate
//!   generation (post-paper, included to demonstrate that the pool is
//!   open to algorithms the architecture's authors never saw).

pub mod apriori;
pub mod dhp;
pub mod eclat;
pub mod executor;
pub mod fpgrowth;
pub mod gidset;
pub mod itemset;
pub mod partition;
pub mod sampling;
pub mod trie;

pub use executor::ShardExec;
pub use gidset::{GidSet, GidSetCtx, GidSetRepr, GidSetScratch};
pub use trie::ItemsetTrie;

use crate::ast::CardSpec;
use crate::error::{MineError, Result};
use itemset::{for_each_proper_subset, Itemset};

/// Encoded input for the simple core processing: one entry per group that
/// contains at least one large item. `total_groups` counts *all* groups
/// (the support denominator), which may exceed `groups.len()`.
#[derive(Debug, Clone)]
pub struct SimpleInput {
    /// Sorted, deduplicated large-item lists per group.
    pub groups: Vec<Vec<u32>>,
    /// Support denominator (`:totg`).
    pub total_groups: u32,
    /// Absolute large threshold (`:mingroups`).
    pub min_groups: u32,
}

impl SimpleInput {
    /// Build from raw `(gid, items)` pairs, sorting and deduplicating.
    pub fn from_groups(
        pairs: Vec<(u32, Vec<u32>)>,
        total_groups: u32,
        min_groups: u32,
    ) -> SimpleInput {
        let mut groups = Vec::with_capacity(pairs.len());
        for (_, mut items) in pairs {
            items.sort_unstable();
            items.dedup();
            if !items.is_empty() {
                groups.push(items);
            }
        }
        SimpleInput {
            groups,
            total_groups,
            min_groups,
        }
    }
}

/// A large itemset with its group count.
pub type LargeItemset = (Itemset, u32);

/// The common contract of the pool.
pub trait ItemsetMiner {
    /// Human-readable identifier (appears in benches and reports).
    fn name(&self) -> &'static str;

    /// Produce every large itemset (support count ≥ `input.min_groups`)
    /// with its exact group count, running counting passes through the
    /// given shard executor. The inventory must be *identical* for every
    /// worker count (see `executor` module docs for the determinism
    /// rules that make this hold).
    fn mine_sharded(&self, input: &SimpleInput, exec: &ShardExec) -> Vec<LargeItemset>;

    /// Sequential entry point: `mine_sharded` on a one-worker executor.
    fn mine(&self, input: &SimpleInput) -> Vec<LargeItemset> {
        self.mine_sharded(input, &ShardExec::sequential())
    }
}

/// The members of the pool, for enumeration in tests and benches.
pub fn default_pool() -> Vec<Box<dyn ItemsetMiner>> {
    vec![
        Box::new(apriori::AprioriGidList),
        Box::new(apriori::AprioriCount),
        Box::new(dhp::Dhp::default()),
        Box::new(partition::Partition::default()),
        Box::new(sampling::Sampling::default()),
        Box::new(eclat::Eclat),
        Box::new(fpgrowth::FpGrowth),
    ]
}

/// Every name `by_name` accepts, canonical spelling first — the list
/// user-facing "unknown algorithm" errors cite.
pub const POOL_NAMES: &[&str] = &[
    "apriori",
    "count",
    "dhp",
    "partition",
    "partition-par",
    "sampling",
    "eclat",
    "fpgrowth",
];

/// Look an algorithm up by name (the pipeline's algorithm selector).
pub fn by_name(name: &str) -> Option<Box<dyn ItemsetMiner>> {
    match name.to_ascii_lowercase().as_str() {
        "apriori" | "gidlist" | "apriori-gidlist" => Some(Box::new(apriori::AprioriGidList)),
        "count" | "apriori-count" => Some(Box::new(apriori::AprioriCount)),
        "dhp" => Some(Box::new(dhp::Dhp::default())),
        "partition" => Some(Box::new(partition::Partition::default())),
        "partition-par" | "partition-parallel" => Some(Box::new(partition::Partition::parallel())),
        "sampling" => Some(Box::new(sampling::Sampling::default())),
        "eclat" => Some(Box::new(eclat::Eclat)),
        "fpgrowth" | "fp-growth" => Some(Box::new(fpgrowth::FpGrowth)),
        _ => None,
    }
}

/// An encoded rule as produced by the core operator.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedRule {
    pub body: Itemset,
    pub head: Itemset,
    /// Groups containing body ∪ head.
    pub group_count: u32,
    pub support: f64,
    pub confidence: f64,
}

/// Accounting from [`rules_from_itemsets_counted`], published to the
/// telemetry registry as `core.rules.*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleGenStats {
    /// Body/head splits whose confidence was evaluated.
    pub candidates: u64,
    /// Splits rejected by the confidence threshold.
    pub pruned_confidence: u64,
    /// Arena nodes in the support-lookup trie over the inventory
    /// (`core.trie.nodes`).
    pub trie_nodes: u64,
    /// Trie walks performed for body-support lookups
    /// (`core.trie.lookups`).
    pub trie_lookups: u64,
}

/// Build rules `(L − H) ⇒ H` from the large-itemset inventory (§4.3.1),
/// honouring the statement's cardinality specifications and minimum
/// confidence. Support of each emitted rule is `count(L) / total`;
/// confidence is `count(L) / count(L − H)`.
pub fn rules_from_itemsets(
    large: &[LargeItemset],
    total_groups: u32,
    body_card: CardSpec,
    head_card: CardSpec,
    min_confidence: f64,
) -> Result<Vec<EncodedRule>> {
    rules_from_itemsets_counted(large, total_groups, body_card, head_card, min_confidence)
        .map(|(rules, _)| rules)
}

/// [`rules_from_itemsets`] also returning split-evaluation counts.
pub fn rules_from_itemsets_counted(
    large: &[LargeItemset],
    total_groups: u32,
    body_card: CardSpec,
    head_card: CardSpec,
    min_confidence: f64,
) -> Result<(Vec<EncodedRule>, RuleGenStats)> {
    // Support lookups go through a prefix trie over the inventory: the
    // body of a split is `set \ head`, which the trie resolves with a
    // skip-walk (`get_excluding`) — the body is only materialised for
    // rules that actually pass the confidence threshold.
    let mut counts = ItemsetTrie::new();
    for (set, cnt) in large {
        counts.insert(set, *cnt);
    }
    let mut out = Vec::new();
    let mut stats = RuleGenStats::default();
    for (set, cnt) in large {
        if set.len() < 2 {
            continue;
        }
        let max_head = head_card.upper_limit().min((set.len() - 1) as u32) as usize;
        let mut failure: Option<MineError> = None;
        for_each_proper_subset(set, max_head, &mut |head| {
            if failure.is_some() || !head_card.admits(head.len()) {
                return;
            }
            let body_len = set.len() - head.len();
            if !body_card.admits(body_len) {
                return;
            }
            let Some(body_cnt) = counts.get_excluding(set, head) else {
                let body: Itemset = set
                    .iter()
                    .copied()
                    .filter(|x| head.binary_search(x).is_err())
                    .collect();
                failure = Some(MineError::Internal {
                    message: format!(
                        "subset {body:?} of large itemset {set:?} missing from inventory \
                         (anti-monotonicity violated)"
                    ),
                });
                return;
            };
            stats.candidates += 1;
            let confidence = *cnt as f64 / body_cnt as f64;
            if confidence + 1e-12 >= min_confidence {
                let body: Itemset = set
                    .iter()
                    .copied()
                    .filter(|x| head.binary_search(x).is_err())
                    .collect();
                out.push(EncodedRule {
                    body,
                    head: head.to_vec(),
                    group_count: *cnt,
                    support: *cnt as f64 / total_groups as f64,
                    confidence,
                });
            } else {
                stats.pruned_confidence += 1;
            }
        });
        if let Some(e) = failure {
            return Err(e);
        }
    }
    stats.trie_nodes = counts.node_count() as u64;
    stats.trie_lookups = counts.take_lookups();
    Ok((out, stats))
}

/// Canonical sort for comparing rule inventories in tests.
pub fn sort_rules(rules: &mut [EncodedRule]) {
    rules.sort_by(|a, b| a.body.cmp(&b.body).then(a.head.cmp(&b.head)));
}

/// Canonical sort for comparing itemset inventories in tests.
pub fn sort_itemsets(sets: &mut [LargeItemset]) {
    sets.sort_by(|a, b| a.0.cmp(&b.0));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> SimpleInput {
        // 4 groups over items {1,2,3}.
        SimpleInput {
            groups: vec![vec![1, 2, 3], vec![1, 2], vec![1, 3], vec![2, 3]],
            total_groups: 4,
            min_groups: 2,
        }
    }

    #[test]
    fn pool_members_agree_on_toy_input() {
        let input = input();
        let mut reference: Option<Vec<LargeItemset>> = None;
        for m in default_pool() {
            let mut got = m.mine(&input);
            sort_itemsets(&mut got);
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "{} disagrees", m.name()),
            }
        }
        let r = reference.unwrap();
        assert!(r.contains(&(vec![1, 2], 2)));
        assert!(r.contains(&(vec![1], 3)));
    }

    #[test]
    fn rules_respect_confidence() {
        let large = vec![(vec![1], 3), (vec![2], 3), (vec![1, 2], 2)];
        let rules =
            rules_from_itemsets(&large, 4, CardSpec::one_to_n(), CardSpec::one_to_one(), 0.7)
                .unwrap();
        // conf({1}⇒{2}) = 2/3 < 0.7 — rejected both ways.
        assert!(rules.is_empty());
        let rules =
            rules_from_itemsets(&large, 4, CardSpec::one_to_n(), CardSpec::one_to_one(), 0.6)
                .unwrap();
        assert_eq!(rules.len(), 2);
        assert!((rules[0].support - 0.5).abs() < 1e-12);
    }

    #[test]
    fn head_cardinality_limits_splits() {
        let large = vec![
            (vec![1], 2),
            (vec![2], 2),
            (vec![3], 2),
            (vec![1, 2], 2),
            (vec![1, 3], 2),
            (vec![2, 3], 2),
            (vec![1, 2, 3], 2),
        ];
        let one_head = rules_from_itemsets(
            &large,
            4,
            CardSpec::one_to_n(),
            CardSpec::one_to_one(),
            0.0001,
        )
        .unwrap();
        assert!(one_head.iter().all(|r| r.head.len() == 1));
        let multi = rules_from_itemsets(
            &large,
            4,
            CardSpec::one_to_n(),
            CardSpec::one_to_n(),
            0.0001,
        )
        .unwrap();
        assert!(multi.iter().any(|r| r.head.len() == 2));
        assert!(multi.len() > one_head.len());
    }

    #[test]
    fn by_name_resolves_pool() {
        for name in [
            "apriori",
            "count",
            "dhp",
            "partition",
            "sampling",
            "eclat",
            "fpgrowth",
        ] {
            assert!(by_name(name).is_some(), "{name}");
        }
        assert!(by_name("quantum").is_none());
    }
}
