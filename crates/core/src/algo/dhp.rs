//! DHP — direct hashing and pruning (Park, Chen & Yu, SIGMOD '95): while
//! counting singletons, hash every 2-subset of each group into a bucket
//! table; a candidate pair is generated only when both items are large
//! *and* its bucket count reaches the threshold. Levels ≥ 3 proceed as in
//! classical Apriori.

use std::collections::HashMap;

use super::executor::ShardExec;
use super::itemset::{apriori_join, Itemset};
use super::trie::ItemsetTrie;
use super::{ItemsetMiner, LargeItemset, SimpleInput};

/// DHP miner; `buckets` sizes the pair-hash table.
#[derive(Debug, Clone, Copy)]
pub struct Dhp {
    pub buckets: usize,
}

impl Default for Dhp {
    fn default() -> Self {
        Dhp { buckets: 1 << 16 }
    }
}

#[inline]
fn bucket(a: u32, b: u32, buckets: usize) -> usize {
    // Cheap mix of the pair; exactness is irrelevant (only an upper bound
    // on pair support is needed).
    let h =
        (a as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ (b as u64).wrapping_mul(0xc2b2ae3d27d4eb4f);
    (h % buckets as u64) as usize
}

impl ItemsetMiner for Dhp {
    fn name(&self) -> &'static str {
        "dhp"
    }

    fn mine_sharded(&self, input: &SimpleInput, exec: &ShardExec) -> Vec<LargeItemset> {
        let mut large: Vec<LargeItemset> = Vec::new();
        let buckets_n = self.buckets.max(1);

        // Pass 1: singleton counts + pair-bucket counts, one sharded scan.
        // Both are sums of per-group contributions, so per-shard partials
        // merge by addition regardless of shard boundaries.
        let partials = exec.map_shards(&input.groups, |_, part| {
            let mut counts: HashMap<u32, u32> = HashMap::new();
            let mut pair_buckets = vec![0u32; buckets_n];
            for items in part {
                for &it in items {
                    *counts.entry(it).or_insert(0) += 1;
                }
                for i in 0..items.len() {
                    for j in (i + 1)..items.len() {
                        pair_buckets[bucket(items[i], items[j], buckets_n)] += 1;
                    }
                }
            }
            (counts, pair_buckets)
        });
        let mut counts: HashMap<u32, u32> = HashMap::new();
        let mut pair_buckets = vec![0u32; buckets_n];
        for (partial_counts, partial_buckets) in partials {
            for (it, c) in partial_counts {
                *counts.entry(it).or_insert(0) += c;
            }
            for (t, c) in pair_buckets.iter_mut().zip(partial_buckets) {
                *t += c;
            }
        }
        let mut l1: Vec<LargeItemset> = counts
            .into_iter()
            .filter(|(_, c)| *c >= input.min_groups)
            .map(|(it, c)| (vec![it], c))
            .collect();
        l1.sort_by(|a, b| a.0.cmp(&b.0));
        large.extend(l1.iter().cloned());

        // C2 with hash pruning: a pair whose bucket stayed below the
        // threshold cannot be large (bucket count ≥ pair support).
        let mut candidates: Vec<Itemset> = Vec::new();
        for i in 0..l1.len() {
            for j in (i + 1)..l1.len() {
                let (a, b) = (l1[i].0[0], l1[j].0[0]);
                if pair_buckets[bucket(a, b, buckets_n)] >= input.min_groups {
                    candidates.push(vec![a, b]);
                }
            }
        }
        let mut level: Vec<LargeItemset> = exec
            .count_candidates(&input.groups, candidates)
            .into_iter()
            .filter(|(_, c)| *c >= input.min_groups)
            .collect();

        // Levels ≥ 3: classical Apriori (subset prune via a prefix trie
        // over the level, probed without materialising the subsets).
        while !level.is_empty() {
            large.extend(level.iter().cloned());
            let trie = ItemsetTrie::from_sets(level.iter().map(|(s, _)| s.as_slice()));
            let mut candidates: Vec<Itemset> = Vec::new();
            for i in 0..level.len() {
                for j in (i + 1)..level.len() {
                    let Some(cand) = apriori_join(&level[i].0, &level[j].0) else {
                        break;
                    };
                    if trie.contains_all_immediate_subsets(&cand) {
                        candidates.push(cand);
                    }
                }
            }
            exec.note_trie(trie.node_count() as u64, trie.take_lookups());
            level = exec
                .count_candidates(&input.groups, candidates)
                .into_iter()
                .filter(|(_, c)| *c >= input.min_groups)
                .collect();
        }
        large
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::apriori::AprioriGidList;
    use crate::algo::sort_itemsets;

    #[test]
    fn agrees_with_apriori_even_with_tiny_hash_table() {
        let groups = vec![
            vec![1, 2, 3],
            vec![1, 2, 4],
            vec![1, 2],
            vec![2, 3, 4],
            vec![3, 4],
            vec![1, 4],
        ];
        let input = SimpleInput {
            groups,
            total_groups: 6,
            min_groups: 2,
        };
        // A 4-bucket table forces collisions; pruning must stay sound
        // (bucket counts only over-approximate).
        for buckets in [4, 64, 1 << 16] {
            let mut got = Dhp { buckets }.mine(&input);
            let mut expect = AprioriGidList.mine(&input);
            sort_itemsets(&mut got);
            sort_itemsets(&mut expect);
            assert_eq!(got, expect, "buckets={buckets}");
        }
    }
}
