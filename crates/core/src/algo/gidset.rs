//! Hybrid group-id set representation for the pool's hot loops.
//!
//! Every pool member that mines vertically (apriori-gidlist, eclat, and
//! the partition/sampling passes built on them) bottoms out in
//! intersections of sorted group-id lists. Zaki's Eclat line of work and
//! the partition paper both observe that the *physical* representation of
//! those sets — id list vs. bitvector — dominates mining runtime, and
//! that the best choice flips with density. [`GidSet`] captures both
//! representations behind one type:
//!
//! * **List** — the existing sorted `Vec<u32>`, intersected by merge or,
//!   for skewed pairs, by galloping (exponential) search;
//! * **Bits** — a dense 64-bit-word bitset over the gid universe,
//!   intersected word-wise with AND + popcount.
//!
//! The representation is chosen *per set* by a density heuristic
//! (bitset once `len * 32 > universe`, i.e. when the list form would
//! occupy more bits than the bitset form — see [`GidSetCtx::build`]), or
//! pinned globally through [`GidSetRepr`] for debugging and the
//! representation-shootout benches.
//!
//! **Determinism.** The choice depends only on the set's cardinality and
//! the universe size, both of which are worker-count invariant under the
//! ShardExec contract (contiguous shards merged in shard order), and the
//! logical content of every intersection is representation independent.
//! Hence mined inventories are bit-identical for every `(repr, workers)`
//! combination — enforced by `tests/gidset_agreement.rs`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use super::itemset::intersect_into;
use crate::error::MineError;

/// List elements are 32 bits each, bitset slots one bit each — so the
/// bitset becomes the smaller encoding once `len * 32 > universe`.
const LIST_BITS_PER_ELEMENT: usize = 32;

/// Requested physical representation for gid sets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum GidSetRepr {
    /// Always sorted `u32` lists (the pre-hybrid behaviour).
    List,
    /// Always dense bitsets.
    Bitset,
    /// Per-set density heuristic: bitset when `len * 32 > universe`.
    #[default]
    Auto,
}

impl GidSetRepr {
    /// Parse a user-facing representation name (`list | bitset | auto`).
    pub fn parse(name: &str) -> Result<GidSetRepr, MineError> {
        match name.to_ascii_lowercase().as_str() {
            "list" => Ok(GidSetRepr::List),
            "bitset" | "bits" => Ok(GidSetRepr::Bitset),
            "auto" | "hybrid" => Ok(GidSetRepr::Auto),
            _ => Err(MineError::UnknownGidSetRepr {
                name: name.to_string(),
            }),
        }
    }
}

impl fmt::Display for GidSetRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GidSetRepr::List => "list",
            GidSetRepr::Bitset => "bitset",
            GidSetRepr::Auto => "auto",
        })
    }
}

/// A set of group identifiers in one of two physical forms. Logical
/// equality (same gids) is what the mining contract depends on; the
/// derived `PartialEq` is intentionally representation sensitive and only
/// used in tests that pin the chosen form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GidSet {
    /// Strictly ascending gid list.
    List(Vec<u32>),
    /// Dense bitset over `0..universe`; `len` caches the popcount.
    Bits { words: Vec<u64>, len: u32 },
}

impl GidSet {
    /// Cardinality (the itemset's support count).
    pub fn len(&self) -> u32 {
        match self {
            GidSet::List(l) => l.len() as u32,
            GidSet::Bits { len, .. } => *len,
        }
    }

    /// True when the set holds no gids.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the set is in bitset form.
    pub fn is_bitset(&self) -> bool {
        matches!(self, GidSet::Bits { .. })
    }

    /// Membership test.
    pub fn contains(&self, gid: u32) -> bool {
        match self {
            GidSet::List(l) => l.binary_search(&gid).is_ok(),
            GidSet::Bits { words, .. } => words
                .get((gid >> 6) as usize)
                .is_some_and(|w| w >> (gid & 63) & 1 == 1),
        }
    }

    /// The gids in ascending order (allocates for bitsets).
    pub fn to_sorted_list(&self) -> Vec<u32> {
        match self {
            GidSet::List(l) => l.clone(),
            GidSet::Bits { words, len } => {
                let mut out = Vec::with_capacity(*len as usize);
                push_bits(words, &mut out);
                out
            }
        }
    }
}

/// Append the set bit positions of `words` to `out`, ascending.
fn push_bits(words: &[u64], out: &mut Vec<u32>) {
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let bit = w.trailing_zeros();
            out.push((wi as u32) << 6 | bit);
            w &= w - 1;
        }
    }
}

/// Representation-choice and intersection counters, owned by the
/// executor and drained into `ExecStats` (→ `core.gidset.*` telemetry).
/// Atomics so shard closures can record without a lock on the data path;
/// all three are worker-count invariant by the determinism contract.
#[derive(Debug, Default)]
pub struct GidSetCounters {
    /// Sets materialised in list form.
    pub list_picked: AtomicU64,
    /// Sets materialised in bitset form.
    pub bitset_picked: AtomicU64,
    /// Intersections performed (materialising or count-only).
    pub intersects: AtomicU64,
}

impl GidSetCounters {
    /// Drain `(list_picked, bitset_picked, intersects)`, resetting to 0.
    pub fn drain(&self) -> (u64, u64, u64) {
        (
            self.list_picked.swap(0, Ordering::Relaxed),
            self.bitset_picked.swap(0, Ordering::Relaxed),
            self.intersects.swap(0, Ordering::Relaxed),
        )
    }
}

/// Per-run context: the gid universe size (support denominator domain),
/// the requested representation policy, and the counters to record into.
/// `Copy`, so shard closures can capture it by value.
#[derive(Debug, Clone, Copy)]
pub struct GidSetCtx<'a> {
    universe: usize,
    repr: GidSetRepr,
    counters: &'a GidSetCounters,
}

/// Which scratch buffer holds the last intersection result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum ScratchKind {
    #[default]
    List,
    Words,
}

/// Reusable intersection buffers: one per shard closure, so the hot loop
/// never allocates for candidates that fail the support threshold.
#[derive(Debug, Default)]
pub struct GidSetScratch {
    list: Vec<u32>,
    words: Vec<u64>,
    kind: ScratchKind,
    len: u32,
}

impl<'a> GidSetCtx<'a> {
    /// A context over `universe` gids recording into `counters`.
    pub fn new(universe: usize, repr: GidSetRepr, counters: &'a GidSetCounters) -> GidSetCtx<'a> {
        GidSetCtx {
            universe,
            repr,
            counters,
        }
    }

    /// The gid universe size this context builds sets over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The representation policy in force.
    pub fn repr(&self) -> GidSetRepr {
        self.repr
    }

    /// Should a set of `len` gids be a bitset under the policy?
    fn pick_bitset(&self, len: usize) -> bool {
        match self.repr {
            GidSetRepr::List => false,
            GidSetRepr::Bitset => true,
            GidSetRepr::Auto => len * LIST_BITS_PER_ELEMENT > self.universe,
        }
    }

    fn words_len(&self) -> usize {
        self.universe.div_ceil(64)
    }

    /// Build a set from a strictly ascending gid list, choosing the
    /// representation by the density heuristic (or the pinned policy).
    pub fn build(&self, sorted: Vec<u32>) -> GidSet {
        if self.pick_bitset(sorted.len()) {
            self.counters.bitset_picked.fetch_add(1, Ordering::Relaxed);
            let mut words = vec![0u64; self.words_len()];
            let len = sorted.len() as u32;
            for &g in &sorted {
                words[(g >> 6) as usize] |= 1u64 << (g & 63);
            }
            GidSet::Bits { words, len }
        } else {
            self.counters.list_picked.fetch_add(1, Ordering::Relaxed);
            GidSet::List(sorted)
        }
    }

    /// Intersect `a ∩ b` into `scratch` without materialising a [`GidSet`];
    /// returns the support count. Call [`GidSetCtx::seal`] afterwards to
    /// materialise survivors — candidates below threshold cost no
    /// allocation beyond the reused buffers.
    pub fn intersect_into(&self, a: &GidSet, b: &GidSet, scratch: &mut GidSetScratch) -> u32 {
        self.counters.intersects.fetch_add(1, Ordering::Relaxed);
        match (a, b) {
            (GidSet::List(x), GidSet::List(y)) => {
                intersect_into(x, y, &mut scratch.list);
                scratch.kind = ScratchKind::List;
                scratch.len = scratch.list.len() as u32;
            }
            (GidSet::Bits { words: x, .. }, GidSet::Bits { words: y, .. }) => {
                scratch.words.clear();
                scratch.words.extend(x.iter().zip(y).map(|(a, b)| a & b));
                scratch.kind = ScratchKind::Words;
                scratch.len = scratch.words.iter().map(|w| w.count_ones()).sum::<u32>();
            }
            (GidSet::List(l), bits @ GidSet::Bits { .. })
            | (bits @ GidSet::Bits { .. }, GidSet::List(l)) => {
                scratch.list.clear();
                scratch
                    .list
                    .extend(l.iter().copied().filter(|&g| bits.contains(g)));
                scratch.kind = ScratchKind::List;
                scratch.len = scratch.list.len() as u32;
            }
        }
        scratch.len
    }

    /// Materialise the last [`GidSetCtx::intersect_into`] result, choosing
    /// the representation for the *result's* cardinality.
    pub fn seal(&self, scratch: &GidSetScratch) -> GidSet {
        match scratch.kind {
            ScratchKind::List => self.build(scratch.list.clone()),
            ScratchKind::Words => {
                if self.pick_bitset(scratch.len as usize) {
                    self.counters.bitset_picked.fetch_add(1, Ordering::Relaxed);
                    GidSet::Bits {
                        words: scratch.words.clone(),
                        len: scratch.len,
                    }
                } else {
                    self.counters.list_picked.fetch_add(1, Ordering::Relaxed);
                    let mut out = Vec::with_capacity(scratch.len as usize);
                    push_bits(&scratch.words, &mut out);
                    GidSet::List(out)
                }
            }
        }
    }

    /// Count `|a ∩ b|` without materialising anything (zero-copy support
    /// counting: word-AND + popcount for bitsets, gallop/merge count for
    /// lists, membership probes for mixed pairs).
    pub fn intersect_len(&self, a: &GidSet, b: &GidSet) -> u32 {
        self.counters.intersects.fetch_add(1, Ordering::Relaxed);
        match (a, b) {
            (GidSet::List(x), GidSet::List(y)) => intersect_len_lists(x, y),
            (GidSet::Bits { words: x, .. }, GidSet::Bits { words: y, .. }) => x
                .iter()
                .zip(y)
                .map(|(a, b)| (a & b).count_ones())
                .sum::<u32>(),
            (GidSet::List(l), bits @ GidSet::Bits { .. })
            | (bits @ GidSet::Bits { .. }, GidSet::List(l)) => {
                l.iter().filter(|&&g| bits.contains(g)).count() as u32
            }
        }
    }

    /// Materialised intersection (convenience over intersect_into + seal).
    pub fn intersect(&self, a: &GidSet, b: &GidSet) -> GidSet {
        let mut scratch = GidSetScratch::default();
        self.intersect_into(a, b, &mut scratch);
        self.seal(&scratch)
    }
}

/// Count-only merge/gallop intersection of two strictly ascending lists
/// (the counting twin of `itemset::intersect_into`).
fn intersect_len_lists(a: &[u32], b: &[u32]) -> u32 {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len() * super::itemset::GALLOP_FACTOR < big.len() {
        let mut base = 0usize;
        let mut count = 0u32;
        for &x in small {
            let tail = &big[base..];
            if tail.is_empty() {
                break;
            }
            let mut step = 1usize;
            while step < tail.len() && tail[step] < x {
                step <<= 1;
            }
            let end = (step + 1).min(tail.len());
            match tail[..end].binary_search(&x) {
                Ok(i) => {
                    count += 1;
                    base += i + 1;
                }
                Err(i) => base += i,
            }
        }
        return count;
    }
    let (mut i, mut j, mut count) = (0, 0, 0u32);
    while i < small.len() && j < big.len() {
        match small[i].cmp(&big[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(universe: usize, repr: GidSetRepr, counters: &'a GidSetCounters) -> GidSetCtx<'a> {
        GidSetCtx::new(universe, repr, counters)
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for (name, repr) in [
            ("list", GidSetRepr::List),
            ("bitset", GidSetRepr::Bitset),
            ("auto", GidSetRepr::Auto),
        ] {
            assert_eq!(GidSetRepr::parse(name).unwrap(), repr);
            assert_eq!(repr.to_string(), name);
        }
        assert_eq!(GidSetRepr::parse("BITS").unwrap(), GidSetRepr::Bitset);
        assert!(matches!(
            GidSetRepr::parse("roaring"),
            Err(MineError::UnknownGidSetRepr { .. })
        ));
    }

    #[test]
    fn density_heuristic_picks_by_len() {
        let counters = GidSetCounters::default();
        let c = ctx(320, GidSetRepr::Auto, &counters);
        // 320-bit universe: list of ≤10 stays a list (10 * 32 = 320 ≯ 320).
        assert!(!c.build((0..10).collect()).is_bitset());
        assert!(c.build((0..11).collect()).is_bitset());
        let (l, b, _) = counters.drain();
        assert_eq!((l, b), (1, 1));
    }

    #[test]
    fn pinned_reprs_override_density() {
        let counters = GidSetCounters::default();
        let dense: Vec<u32> = (0..100).collect();
        assert!(!ctx(100, GidSetRepr::List, &counters)
            .build(dense.clone())
            .is_bitset());
        assert!(ctx(100_000, GidSetRepr::Bitset, &counters)
            .build(vec![7])
            .is_bitset());
    }

    #[test]
    fn bitset_roundtrips_and_contains() {
        let counters = GidSetCounters::default();
        let gids = vec![0, 1, 63, 64, 65, 127, 200];
        let set = ctx(201, GidSetRepr::Bitset, &counters).build(gids.clone());
        assert_eq!(set.len(), gids.len() as u32);
        assert_eq!(set.to_sorted_list(), gids);
        assert!(set.contains(63) && set.contains(200));
        assert!(!set.contains(2) && !set.contains(199));
        assert!(!set.contains(10_000), "out of universe");
    }

    #[test]
    fn intersections_agree_across_representation_pairs() {
        let counters = GidSetCounters::default();
        let a: Vec<u32> = (0..300).filter(|g| g % 3 == 0).collect();
        let b: Vec<u32> = (0..300).filter(|g| g % 5 == 0).collect();
        let expect: Vec<u32> = (0..300).filter(|g| g % 15 == 0).collect();
        let auto = ctx(300, GidSetRepr::Auto, &counters);
        let as_list = |v: &[u32]| GidSet::List(v.to_vec());
        let as_bits = |v: &[u32]| ctx(300, GidSetRepr::Bitset, &counters).build(v.to_vec());
        let pairs: Vec<(GidSet, GidSet)> = vec![
            (as_list(&a), as_list(&b)),
            (as_bits(&a), as_bits(&b)),
            (as_list(&a), as_bits(&b)),
            (as_bits(&a), as_list(&b)),
        ];
        for (x, y) in &pairs {
            let got = auto.intersect(x, y);
            assert_eq!(got.to_sorted_list(), expect);
            assert_eq!(auto.intersect_len(x, y) as usize, expect.len());
            let mut scratch = GidSetScratch::default();
            assert_eq!(
                auto.intersect_into(x, y, &mut scratch) as usize,
                expect.len()
            );
        }
    }

    #[test]
    fn scratch_reuse_is_clean_between_calls() {
        let counters = GidSetCounters::default();
        let c = ctx(64, GidSetRepr::List, &counters);
        let mut scratch = GidSetScratch::default();
        let a = GidSet::List(vec![1, 2, 3, 4, 5]);
        let b = GidSet::List(vec![2, 4, 6]);
        assert_eq!(c.intersect_into(&a, &b, &mut scratch), 2);
        assert_eq!(c.seal(&scratch).to_sorted_list(), vec![2, 4]);
        // A second, disjoint intersection must not see stale contents.
        let d = GidSet::List(vec![9]);
        assert_eq!(c.intersect_into(&a, &d, &mut scratch), 0);
        assert!(c.seal(&scratch).is_empty());
    }

    #[test]
    fn gallop_count_matches_merge_count() {
        // Skewed pair: triggers the galloping path in intersect_len_lists.
        let small = vec![5, 100, 101, 900, 2047];
        let big: Vec<u32> = (0..2048).collect();
        assert_eq!(intersect_len_lists(&small, &big), 5);
        let sparse_big: Vec<u32> = (0..2048).step_by(2).collect();
        assert_eq!(intersect_len_lists(&small, &sparse_big), 2, "100 and 900");
        assert_eq!(intersect_len_lists(&[], &big), 0);
    }

    #[test]
    fn counters_drain_and_reset() {
        let counters = GidSetCounters::default();
        let c = ctx(32, GidSetRepr::Auto, &counters);
        let a = c.build(vec![1, 2, 3]);
        let b = c.build(vec![2, 3, 4]);
        c.intersect_len(&a, &b);
        let (l, b_picked, i) = counters.drain();
        assert_eq!(l + b_picked, 2);
        assert_eq!(i, 1);
        assert_eq!(counters.drain(), (0, 0, 0), "reset after drain");
    }
}
