//! Itemset primitives shared by the algorithm pool.

/// An itemset: encoded item identifiers, strictly ascending.
pub type Itemset = Vec<u32>;

/// True when `a ⊆ b`, both strictly ascending.
pub fn is_subset(a: &[u32], b: &[u32]) -> bool {
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Intersect two strictly ascending id lists.
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Apriori join: combine two k-itemsets sharing their first k-1 items into
/// a (k+1)-itemset; `None` if they don't join (requires `a < b` on the last
/// item for canonical generation).
pub fn apriori_join(a: &[u32], b: &[u32]) -> Option<Itemset> {
    let k = a.len();
    if k != b.len() || k == 0 || a[..k - 1] != b[..k - 1] || a[k - 1] >= b[k - 1] {
        return None;
    }
    let mut out = a.to_vec();
    out.push(b[k - 1]);
    Some(out)
}

/// All (k-1)-subsets of a k-itemset.
pub fn immediate_subsets(set: &[u32]) -> impl Iterator<Item = Itemset> + '_ {
    (0..set.len()).map(move |skip| {
        set.iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, &x)| x)
            .collect()
    })
}

/// Enumerate every non-empty proper subset of `set` with size ≤ `max_size`,
/// invoking `f(subset)` for each.
pub fn for_each_proper_subset(set: &[u32], max_size: usize, f: &mut impl FnMut(&[u32])) {
    let n = set.len();
    let cap = max_size.min(n.saturating_sub(1));
    let mut buf: Vec<u32> = Vec::with_capacity(cap);
    fn rec(set: &[u32], start: usize, cap: usize, buf: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
        for i in start..set.len() {
            buf.push(set[i]);
            f(buf);
            if buf.len() < cap {
                rec(set, i + 1, cap, buf, f);
            }
            buf.pop();
        }
    }
    if cap > 0 {
        rec(set, 0, cap, &mut buf, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_checks() {
        assert!(is_subset(&[2, 5], &[1, 2, 3, 5]));
        assert!(!is_subset(&[2, 6], &[1, 2, 3, 5]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
    }

    #[test]
    fn intersect_sorted() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 5, 8]), vec![3, 5]);
        assert!(intersect(&[1], &[2]).is_empty());
    }

    #[test]
    fn join_requires_shared_prefix() {
        assert_eq!(apriori_join(&[1, 2], &[1, 3]), Some(vec![1, 2, 3]));
        assert_eq!(apriori_join(&[1, 3], &[1, 2]), None); // wrong order
        assert_eq!(apriori_join(&[1, 2], &[2, 3]), None); // prefix differs
    }

    #[test]
    fn immediate_subsets_of_triple() {
        let subs: Vec<Itemset> = immediate_subsets(&[1, 2, 3]).collect();
        assert_eq!(subs, vec![vec![2, 3], vec![1, 3], vec![1, 2]]);
    }

    #[test]
    fn proper_subsets_bounded() {
        let mut seen = Vec::new();
        for_each_proper_subset(&[1, 2, 3], 2, &mut |s| seen.push(s.to_vec()));
        assert!(seen.contains(&vec![1]));
        assert!(seen.contains(&vec![1, 2]));
        assert!(seen.contains(&vec![2, 3]));
        assert!(!seen.contains(&vec![1, 2, 3]), "proper subsets only");
        assert_eq!(seen.len(), 6);
    }
}
