//! Itemset primitives shared by the algorithm pool.

/// An itemset: encoded item identifiers, strictly ascending.
pub type Itemset = Vec<u32>;

/// True when `a ⊆ b`, both strictly ascending.
pub fn is_subset(a: &[u32], b: &[u32]) -> bool {
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// When the shorter list is this many times shorter than the longer one,
/// [`intersect_into`] gallops (exponential search) instead of merging.
pub(crate) const GALLOP_FACTOR: usize = 16;

/// Intersect two strictly ascending id lists.
///
/// Thin wrapper over [`intersect_into`] for callers that want an owned
/// result; hot loops should pass a reusable buffer instead.
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    intersect_into(a, b, &mut out);
    out
}

/// Intersect two strictly ascending id lists into a caller-provided
/// buffer (cleared first), so per-candidate loops can reuse one
/// allocation. Skewed pairs (one list ≥ 16× longer) use galloping —
/// exponential search positions each element of the short list in the
/// long one in `O(short · log(long/short))` instead of `O(short + long)`.
pub fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    out.reserve(small.len());
    if small.len() * GALLOP_FACTOR < big.len() {
        let mut base = 0usize;
        for &x in small {
            let tail = &big[base..];
            if tail.is_empty() {
                break;
            }
            let mut step = 1usize;
            while step < tail.len() && tail[step] < x {
                step <<= 1;
            }
            let end = (step + 1).min(tail.len());
            match tail[..end].binary_search(&x) {
                Ok(i) => {
                    out.push(x);
                    base += i + 1;
                }
                Err(i) => base += i,
            }
        }
        return;
    }
    let (mut i, mut j) = (0, 0);
    while i < small.len() && j < big.len() {
        match small[i].cmp(&big[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(small[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Apriori join: combine two k-itemsets sharing their first k-1 items into
/// a (k+1)-itemset; `None` if they don't join (requires `a < b` on the last
/// item for canonical generation).
pub fn apriori_join(a: &[u32], b: &[u32]) -> Option<Itemset> {
    let k = a.len();
    if k != b.len() || k == 0 || a[..k - 1] != b[..k - 1] || a[k - 1] >= b[k - 1] {
        return None;
    }
    let mut out = a.to_vec();
    out.push(b[k - 1]);
    Some(out)
}

/// All (k-1)-subsets of a k-itemset.
pub fn immediate_subsets(set: &[u32]) -> impl Iterator<Item = Itemset> + '_ {
    (0..set.len()).map(move |skip| {
        set.iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, &x)| x)
            .collect()
    })
}

/// Enumerate every non-empty proper subset of `set` with size ≤ `max_size`,
/// invoking `f(subset)` for each.
pub fn for_each_proper_subset(set: &[u32], max_size: usize, f: &mut impl FnMut(&[u32])) {
    let n = set.len();
    if n <= 1 || max_size == 0 {
        // Empty and singleton sets have no non-empty proper subsets, and a
        // zero size cap admits nothing: skip the recursion (and its buffer
        // allocation) entirely.
        return;
    }
    let cap = max_size.min(n - 1);
    let mut buf: Vec<u32> = Vec::with_capacity(cap);
    fn rec(set: &[u32], start: usize, cap: usize, buf: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
        for i in start..set.len() {
            buf.push(set[i]);
            f(buf);
            if buf.len() < cap {
                rec(set, i + 1, cap, buf, f);
            }
            buf.pop();
        }
    }
    rec(set, 0, cap, &mut buf, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_checks() {
        assert!(is_subset(&[2, 5], &[1, 2, 3, 5]));
        assert!(!is_subset(&[2, 6], &[1, 2, 3, 5]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
    }

    #[test]
    fn intersect_sorted() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 5, 8]), vec![3, 5]);
        assert!(intersect(&[1], &[2]).is_empty());
    }

    #[test]
    fn intersect_into_reuses_buffer() {
        let mut buf = vec![99, 99];
        intersect_into(&[1, 3, 5], &[3, 4, 5], &mut buf);
        assert_eq!(buf, vec![3, 5], "buffer cleared before writing");
        intersect_into(&[1], &[2], &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn galloping_matches_merge_on_skewed_pairs() {
        // Short list vs a 16×+ longer one triggers the galloping path;
        // compare against the straightforward merge semantics.
        let big: Vec<u32> = (0..1000).filter(|x| x % 3 != 0).collect();
        for small in [
            vec![],
            vec![0],
            vec![1],
            vec![998, 999],
            vec![1, 2, 500, 501, 997],
            vec![2000],
        ] {
            let expect: Vec<u32> = small
                .iter()
                .copied()
                .filter(|x| x % 3 != 0 && *x < 1000)
                .collect();
            assert_eq!(intersect(&small, &big), expect, "{small:?}");
            assert_eq!(intersect(&big, &small), expect, "order-insensitive");
        }
    }

    #[test]
    fn join_requires_shared_prefix() {
        assert_eq!(apriori_join(&[1, 2], &[1, 3]), Some(vec![1, 2, 3]));
        assert_eq!(apriori_join(&[1, 3], &[1, 2]), None); // wrong order
        assert_eq!(apriori_join(&[1, 2], &[2, 3]), None); // prefix differs
    }

    #[test]
    fn immediate_subsets_of_triple() {
        let subs: Vec<Itemset> = immediate_subsets(&[1, 2, 3]).collect();
        assert_eq!(subs, vec![vec![2, 3], vec![1, 3], vec![1, 2]]);
    }

    #[test]
    fn proper_subsets_bounded() {
        let mut seen = Vec::new();
        for_each_proper_subset(&[1, 2, 3], 2, &mut |s| seen.push(s.to_vec()));
        assert!(seen.contains(&vec![1]));
        assert!(seen.contains(&vec![1, 2]));
        assert!(seen.contains(&vec![2, 3]));
        assert!(!seen.contains(&vec![1, 2, 3]), "proper subsets only");
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn proper_subsets_edge_cases() {
        // Empty set, singleton, and a zero size cap all enumerate nothing
        // (and return before allocating the recursion buffer).
        let mut seen = Vec::new();
        for_each_proper_subset(&[], 3, &mut |s| seen.push(s.to_vec()));
        assert!(seen.is_empty(), "empty set");
        for_each_proper_subset(&[42], 3, &mut |s| seen.push(s.to_vec()));
        assert!(seen.is_empty(), "singleton has no non-empty proper subset");
        for_each_proper_subset(&[1, 2, 3], 0, &mut |s| seen.push(s.to_vec()));
        assert!(seen.is_empty(), "max_size = 0 admits nothing");
        // Sanity: a 2-set still enumerates its two singletons.
        for_each_proper_subset(&[1, 2], 5, &mut |s| seen.push(s.to_vec()));
        assert_eq!(seen, vec![vec![1], vec![2]]);
    }
}
