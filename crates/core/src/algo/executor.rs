//! The sharded mining executor: data-parallel candidate counting for the
//! algorithm pool.
//!
//! The encoded group list of a simple statement is an embarrassingly
//! partitionable structure — every counting pass the pool performs
//! (singleton counts, candidate-support scans, gid-list construction) is
//! a fold over groups that can run on contiguous shards and be merged.
//! [`ShardExec`] owns that pattern once, so every member of the pool
//! parallelises the same way and — crucially — stays *deterministic*:
//!
//! * shards are contiguous chunks of the group list, in order;
//! * per-shard results are merged **in shard order**, never in thread
//!   completion order;
//! * group identifiers assigned inside a shard are offset by the shard's
//!   start position, so merged gid lists are identical to the sequential
//!   ones.
//!
//! Under those rules the parallel path produces bit-identical inventories
//! to `workers = 1` (enforced by `tests/parallel_agreement.rs`), which is
//! what lets the engine flip worker counts freely without perturbing the
//! mined rule set.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use super::gidset::{GidSet, GidSetCounters, GidSetCtx, GidSetRepr};
use super::itemset::{is_subset, Itemset};
use super::LargeItemset;

/// Candidate counts for one level of a level-wise algorithm (keyed by
/// itemset size `k`). `generated` counts candidates produced by the join
/// step; `pruned` counts those that then failed the support threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    pub generated: u64,
    pub pruned: u64,
}

/// Work accounting accumulated by an executor across one mining run,
/// drained by the core operator and published to the telemetry registry
/// (`core.*` metrics — see `docs/OBSERVABILITY.md`). Everything except
/// `shards_run` and `merge_passes` is worker-count invariant, mirroring
/// the executor's determinism contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Shard closures executed (≥ passes; varies with worker count).
    pub shards_run: u64,
    /// Sharded passes whose results were merged.
    pub merge_passes: u64,
    /// Wall-clock spent merging per-shard results back together.
    pub merge_time: Duration,
    /// Group rows visited by whole-group scans (L1 scans, gid-list
    /// builds, candidate-support passes).
    pub groups_scanned: u64,
    /// Candidates whose support was counted by [`ShardExec::count_candidates`].
    pub candidates_counted: u64,
    /// Per-level candidate generation/pruning, reported by the
    /// level-wise pool members via [`ShardExec::note_level`].
    pub levels: BTreeMap<u32, LevelStats>,
    /// Gid sets materialised in list form (`core.gidset.list.picked`).
    pub gidset_list_picked: u64,
    /// Gid sets materialised in bitset form (`core.gidset.bitset.picked`).
    pub gidset_bitset_picked: u64,
    /// Gid-set intersections performed (`core.gidset.intersects`).
    pub gidset_intersects: u64,
    /// Prefix-trie arena nodes built for candidate pruning
    /// (`core.trie.nodes`), reported via [`ShardExec::note_trie`].
    pub trie_nodes: u64,
    /// Prefix-trie walks performed (`core.trie.lookups`).
    pub trie_lookups: u64,
}

/// A shard-parallel executor. One instance drives a single mining run;
/// per-shard wall-clock timings and work statistics accumulate inside
/// and can be drained afterwards for reporting
/// (`PhaseTimings::core_shards`, the `core.*` telemetry metrics).
#[derive(Debug, Default)]
pub struct ShardExec {
    workers: usize,
    gidset_repr: GidSetRepr,
    gidset_counters: GidSetCounters,
    shard_timings: Mutex<Vec<Duration>>,
    stats: Mutex<ExecStats>,
}

impl ShardExec {
    /// An executor with the given worker count (0 is treated as 1).
    pub fn new(workers: usize) -> ShardExec {
        ShardExec {
            workers: workers.max(1),
            gidset_repr: GidSetRepr::default(),
            gidset_counters: GidSetCounters::default(),
            shard_timings: Mutex::new(Vec::new()),
            stats: Mutex::new(ExecStats::default()),
        }
    }

    /// Pin the gid-set physical representation the run's [`GidSetCtx`]s
    /// will use (default: the per-set density heuristic).
    pub fn with_gidset_repr(mut self, repr: GidSetRepr) -> ShardExec {
        self.gidset_repr = repr;
        self
    }

    /// The configured gid-set representation policy.
    pub fn gidset_repr(&self) -> GidSetRepr {
        self.gidset_repr
    }

    /// A gid-set context over `universe` gids, recording representation
    /// choices and intersections into this executor's counters. Callers
    /// mining a shard-local slice pass that slice's length as the
    /// universe (gids are shard-offset, so density stays meaningful).
    pub fn gidset_ctx(&self, universe: usize) -> GidSetCtx<'_> {
        GidSetCtx::new(universe, self.gidset_repr, &self.gidset_counters)
    }

    /// The sequential executor (`workers = 1`); every `mine` call without
    /// an explicit executor runs through this.
    pub fn sequential() -> ShardExec {
        ShardExec::new(1)
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Drain the per-shard timings recorded since the last call. Each
    /// `map_shards` invocation appends one duration per shard it ran.
    pub fn take_shard_timings(&self) -> Vec<Duration> {
        std::mem::take(&mut self.shard_timings.lock().expect("timings lock"))
    }

    /// Drain the work statistics accumulated since the last call
    /// (including the lock-free gid-set counters).
    pub fn take_stats(&self) -> ExecStats {
        let mut stats = std::mem::take(&mut *self.stats.lock().expect("stats lock"));
        let (list, bitset, intersects) = self.gidset_counters.drain();
        stats.gidset_list_picked += list;
        stats.gidset_bitset_picked += bitset;
        stats.gidset_intersects += intersects;
        stats
    }

    /// Record one candidate prefix-trie: `nodes` arena entries were
    /// built and `lookups` walks performed. Worker-count invariant — the
    /// trie is built from the merged level and every candidate's probes
    /// are independent of the sharding.
    pub fn note_trie(&self, nodes: u64, lookups: u64) {
        if nodes == 0 && lookups == 0 {
            return;
        }
        let mut stats = self.stats.lock().expect("stats lock");
        stats.trie_nodes += nodes;
        stats.trie_lookups += lookups;
    }

    /// Record one level of candidate generation: `generated` candidates
    /// of size `k` were produced, of which `pruned` failed the support
    /// threshold. Called by the level-wise pool members; counts are
    /// worker-count invariant by the determinism contract.
    pub fn note_level(&self, k: u32, generated: u64, pruned: u64) {
        if generated == 0 && pruned == 0 {
            return;
        }
        let mut stats = self.stats.lock().expect("stats lock");
        let entry = stats.levels.entry(k).or_default();
        entry.generated += generated;
        entry.pruned += pruned;
    }

    fn note_merge(&self, started: Instant) {
        let mut stats = self.stats.lock().expect("stats lock");
        stats.merge_passes += 1;
        stats.merge_time += started.elapsed();
    }

    fn note_scan(&self, groups: u64, candidates: u64) {
        let mut stats = self.stats.lock().expect("stats lock");
        stats.groups_scanned += groups;
        stats.candidates_counted += candidates;
    }

    /// Split `items` into at most `workers` contiguous chunks and apply
    /// `f(start_offset, chunk)` to each — on scoped OS threads when more
    /// than one shard results. Results are returned **in shard order**
    /// (not completion order), which is the determinism contract every
    /// caller builds on.
    pub fn map_shards<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let shards = self.workers.min(items.len());
        let chunk = items.len().div_ceil(shards);
        if shards == 1 {
            let t = Instant::now();
            let out = f(0, items);
            self.shard_timings
                .lock()
                .expect("timings lock")
                .push(t.elapsed());
            self.stats.lock().expect("stats lock").shards_run += 1;
            return vec![out];
        }
        let timed: Vec<(R, Duration)> = std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .enumerate()
                .map(|(i, part)| {
                    let f = &f;
                    scope.spawn(move || {
                        let t = Instant::now();
                        let out = f(i * chunk, part);
                        (out, t.elapsed())
                    })
                })
                .collect();
            // Joining in spawn order preserves shard order.
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        self.stats.lock().expect("stats lock").shards_run += timed.len() as u64;
        let mut timings = self.shard_timings.lock().expect("timings lock");
        timed
            .into_iter()
            .map(|(out, d)| {
                timings.push(d);
                out
            })
            .collect()
    }

    /// Count each candidate's support with one sharded pass over the
    /// groups; per-shard count vectors are summed positionally.
    pub fn count_candidates(
        &self,
        groups: &[Vec<u32>],
        candidates: Vec<Itemset>,
    ) -> Vec<LargeItemset> {
        if candidates.is_empty() {
            return Vec::new();
        }
        self.note_scan(groups.len() as u64, candidates.len() as u64);
        let cand = &candidates;
        let partials = self.map_shards(groups, |_, part| {
            let mut counts = vec![0u32; cand.len()];
            for items in part {
                for (i, c) in cand.iter().enumerate() {
                    if is_subset(c, items) {
                        counts[i] += 1;
                    }
                }
            }
            counts
        });
        let merge_start = Instant::now();
        let mut totals = vec![0u32; candidates.len()];
        for partial in partials {
            for (t, c) in totals.iter_mut().zip(partial) {
                *t += c;
            }
        }
        self.note_merge(merge_start);
        candidates.into_iter().zip(totals).collect()
    }

    /// Per-item occurrence counts over all groups (the L1 scan), merged
    /// from per-shard maps.
    pub fn item_counts(&self, groups: &[Vec<u32>]) -> HashMap<u32, u32> {
        self.note_scan(groups.len() as u64, 0);
        let partials = self.map_shards(groups, |_, part| {
            let mut counts: HashMap<u32, u32> = HashMap::new();
            for items in part {
                for &it in items {
                    *counts.entry(it).or_insert(0) += 1;
                }
            }
            counts
        });
        let merge_start = Instant::now();
        let mut merged: HashMap<u32, u32> = HashMap::new();
        for partial in partials {
            for (it, c) in partial {
                *merged.entry(it).or_insert(0) += c;
            }
        }
        self.note_merge(merge_start);
        merged
    }

    /// Vertical layout: item → sorted group-id list. Shards assign gids
    /// offset by their start position and are concatenated in shard
    /// order, so each list comes out globally sorted — identical to a
    /// sequential scan.
    pub fn gidlists(&self, groups: &[Vec<u32>]) -> HashMap<u32, Vec<u32>> {
        self.note_scan(groups.len() as u64, 0);
        let partials = self.map_shards(groups, |start, part| {
            let mut lists: HashMap<u32, Vec<u32>> = HashMap::new();
            for (g, items) in part.iter().enumerate() {
                for &it in items {
                    lists.entry(it).or_default().push((start + g) as u32);
                }
            }
            lists
        });
        let merge_start = Instant::now();
        let mut merged: HashMap<u32, Vec<u32>> = HashMap::new();
        for partial in partials {
            for (it, mut gl) in partial {
                merged.entry(it).or_default().append(&mut gl);
            }
        }
        self.note_merge(merge_start);
        merged
    }

    /// [`ShardExec::gidlists`] with each list converted to a [`GidSet`]
    /// by `ctx`'s representation policy. The lists are built and merged
    /// under the determinism contract first, so the density decision sees
    /// the same global cardinalities at every worker count.
    pub fn gidsets(&self, groups: &[Vec<u32>], ctx: &GidSetCtx<'_>) -> HashMap<u32, GidSet> {
        self.gidlists(groups)
            .into_iter()
            .map(|(it, gl)| (it, ctx.build(gl)))
            .collect()
    }

    /// Shard an index range `0..n` (for loops whose iterations touch a
    /// shared slice rather than owning their data). Returns per-shard
    /// results in shard order.
    pub fn map_index_shards<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(std::ops::Range<usize>) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let indices: Vec<usize> = (0..n).collect();
        self.map_shards(&indices, |start, part| f(start..start + part.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups() -> Vec<Vec<u32>> {
        vec![
            vec![1, 2, 3],
            vec![1, 2],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3],
            vec![2],
            vec![7],
        ]
    }

    #[test]
    fn map_shards_preserves_order() {
        for workers in [1, 2, 3, 5, 16] {
            let exec = ShardExec::new(workers);
            let items: Vec<u32> = (0..23).collect();
            let out = exec.map_shards(&items, |start, part| (start, part.to_vec()));
            let flat: Vec<u32> = out.into_iter().flat_map(|(_, p)| p).collect();
            assert_eq!(flat, items, "workers={workers}");
        }
    }

    #[test]
    fn shard_offsets_are_start_positions() {
        let exec = ShardExec::new(3);
        let items: Vec<u32> = (0..10).collect();
        let out = exec.map_shards(&items, |start, part| (start, part.len()));
        let mut expect_start = 0;
        for (start, len) in out {
            assert_eq!(start, expect_start);
            expect_start += len;
        }
        assert_eq!(expect_start, 10);
    }

    #[test]
    fn counts_match_sequential_for_any_worker_count() {
        let g = groups();
        let candidates = vec![vec![1], vec![2], vec![1, 2], vec![2, 3], vec![9]];
        let expect = ShardExec::sequential().count_candidates(&g, candidates.clone());
        for workers in [2, 3, 4, 7, 9] {
            let got = ShardExec::new(workers).count_candidates(&g, candidates.clone());
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn gidlists_are_sorted_and_complete() {
        let g = groups();
        for workers in [1, 2, 3, 4, 7] {
            let lists = ShardExec::new(workers).gidlists(&g);
            assert_eq!(lists[&1], vec![0, 1, 3, 4], "workers={workers}");
            assert_eq!(lists[&7], vec![6]);
            for gl in lists.values() {
                assert!(gl.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            }
        }
    }

    #[test]
    fn item_counts_match_sequential() {
        let g = groups();
        let expect = ShardExec::sequential().item_counts(&g);
        for workers in [2, 3, 7] {
            assert_eq!(ShardExec::new(workers).item_counts(&g), expect);
        }
    }

    #[test]
    fn shard_timings_accumulate_and_drain() {
        let exec = ShardExec::new(2);
        let items: Vec<u32> = (0..8).collect();
        exec.map_shards(&items, |_, part| part.len());
        let t = exec.take_shard_timings();
        assert_eq!(t.len(), 2);
        assert!(exec.take_shard_timings().is_empty(), "drained");
    }

    #[test]
    fn stats_accumulate_and_drain() {
        let exec = ShardExec::new(2);
        let g = groups();
        exec.count_candidates(&g, vec![vec![1], vec![2, 3]]);
        exec.item_counts(&g);
        exec.note_level(2, 10, 4);
        exec.note_level(2, 5, 1);
        exec.note_level(3, 0, 0); // ignored: nothing to record
        let stats = exec.take_stats();
        assert_eq!(stats.groups_scanned, 2 * g.len() as u64);
        assert_eq!(stats.candidates_counted, 2);
        assert_eq!(stats.merge_passes, 2);
        assert!(stats.shards_run >= 2);
        assert_eq!(stats.levels.len(), 1);
        assert_eq!(
            stats.levels[&2],
            LevelStats {
                generated: 15,
                pruned: 5
            }
        );
        assert_eq!(exec.take_stats(), ExecStats::default(), "drained");
    }

    #[test]
    fn scan_stats_are_worker_invariant() {
        let g = groups();
        let candidates = vec![vec![1], vec![2], vec![2, 3]];
        let expect = {
            let exec = ShardExec::sequential();
            exec.count_candidates(&g, candidates.clone());
            exec.gidlists(&g);
            let mut s = exec.take_stats();
            s.shards_run = 0;
            s.merge_time = Duration::ZERO;
            s.merge_passes = 0;
            s
        };
        for workers in [2, 3, 7] {
            let exec = ShardExec::new(workers);
            exec.count_candidates(&g, candidates.clone());
            exec.gidlists(&g);
            let mut s = exec.take_stats();
            s.shards_run = 0;
            s.merge_time = Duration::ZERO;
            s.merge_passes = 0;
            assert_eq!(s, expect, "workers={workers}");
        }
    }

    #[test]
    fn gidsets_follow_repr_and_feed_stats() {
        let g = groups();
        let exec = ShardExec::new(2).with_gidset_repr(GidSetRepr::Bitset);
        assert_eq!(exec.gidset_repr(), GidSetRepr::Bitset);
        let ctx = exec.gidset_ctx(g.len());
        let sets = exec.gidsets(&g, &ctx);
        assert!(sets.values().all(|s| s.is_bitset()));
        assert_eq!(sets[&1].to_sorted_list(), vec![0, 1, 3, 4]);
        exec.note_trie(5, 12);
        let stats = exec.take_stats();
        assert_eq!(stats.gidset_bitset_picked, sets.len() as u64);
        assert_eq!(stats.gidset_list_picked, 0);
        assert_eq!((stats.trie_nodes, stats.trie_lookups), (5, 12));
        assert_eq!(exec.take_stats(), ExecStats::default(), "atomics drained");
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let exec = ShardExec::new(4);
        let out: Vec<usize> = exec.map_shards(&[] as &[u32], |_, part| part.len());
        assert!(out.is_empty());
        assert!(exec.take_shard_timings().is_empty());
    }
}
