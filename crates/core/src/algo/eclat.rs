//! Eclat-style depth-first vertical mining (Zaki et al.): each itemset
//! carries its group-id list; the search extends a prefix item by item,
//! intersecting lists. Compared to level-wise Apriori it trades the
//! subset-prune for cache-friendly depth-first list intersections — the
//! natural "one more member" of the paper's interoperable pool.

use super::executor::ShardExec;
use super::itemset::{intersect, Itemset};
use super::{ItemsetMiner, LargeItemset, SimpleInput};

/// Depth-first vertical miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Eclat;

impl ItemsetMiner for Eclat {
    fn name(&self) -> &'static str {
        "eclat"
    }

    fn mine_sharded(&self, input: &SimpleInput, exec: &ShardExec) -> Vec<LargeItemset> {
        // Vertical layout: item → sorted group ids (sharded build).
        let gidlists = exec.gidlists(&input.groups);
        let mut frontier: Vec<(u32, Vec<u32>)> = gidlists
            .into_iter()
            .filter(|(_, gl)| gl.len() as u32 >= input.min_groups)
            .collect();
        frontier.sort_by_key(|(it, _)| *it);

        // The search trees rooted at each top-level item are independent,
        // so the frontier index is sharded across workers; the final sort
        // makes the inventory order worker-count invariant.
        let min_groups = input.min_groups;
        let frontier_ref = &frontier;
        let parts = exec.map_index_shards(frontier.len(), |range| {
            let mut out: Vec<LargeItemset> = Vec::new();
            for i in range {
                let (item, gl) = &frontier_ref[i];
                let mut prefix: Itemset = vec![*item];
                out.push((prefix.clone(), gl.len() as u32));
                let mut next: Vec<(u32, Vec<u32>)> = Vec::new();
                for (other, other_gl) in &frontier_ref[i + 1..] {
                    let joined = intersect(gl, other_gl);
                    if joined.len() as u32 >= min_groups {
                        next.push((*other, joined));
                    }
                }
                if !next.is_empty() {
                    dfs(&next, &mut prefix, min_groups, &mut out);
                }
            }
            out
        });
        let mut out: Vec<LargeItemset> = parts.into_iter().flatten().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Extend `prefix` with each frontier item; recurse on the conditional
/// frontier of items that still qualify.
fn dfs(
    frontier: &[(u32, Vec<u32>)],
    prefix: &mut Itemset,
    min_groups: u32,
    out: &mut Vec<LargeItemset>,
) {
    for (i, (item, gl)) in frontier.iter().enumerate() {
        prefix.push(*item);
        out.push((prefix.clone(), gl.len() as u32));
        // Conditional frontier: later items intersected with this list.
        let mut next: Vec<(u32, Vec<u32>)> = Vec::new();
        for (other, other_gl) in &frontier[i + 1..] {
            let joined = intersect(gl, other_gl);
            if joined.len() as u32 >= min_groups {
                next.push((*other, joined));
            }
        }
        if !next.is_empty() {
            dfs(&next, prefix, min_groups, out);
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::apriori::AprioriGidList;
    use crate::algo::sort_itemsets;

    #[test]
    fn agrees_with_apriori() {
        let input = SimpleInput {
            groups: vec![
                vec![1, 2, 3],
                vec![1, 2],
                vec![2, 3],
                vec![1, 3],
                vec![1, 2, 3],
            ],
            total_groups: 5,
            min_groups: 2,
        };
        let mut a = AprioriGidList.mine(&input);
        let mut e = Eclat.mine(&input);
        sort_itemsets(&mut a);
        sort_itemsets(&mut e);
        assert_eq!(a, e);
    }

    #[test]
    fn deep_itemsets_found() {
        let input = SimpleInput {
            groups: vec![vec![1, 2, 3, 4, 5], vec![1, 2, 3, 4, 5]],
            total_groups: 2,
            min_groups: 2,
        };
        let got = Eclat.mine(&input);
        // 2^5 - 1 = 31 non-empty subsets, all with count 2.
        assert_eq!(got.len(), 31);
        assert!(got.iter().all(|(_, c)| *c == 2));
    }

    #[test]
    fn empty_input() {
        let input = SimpleInput {
            groups: vec![],
            total_groups: 0,
            min_groups: 1,
        };
        assert!(Eclat.mine(&input).is_empty());
    }
}
