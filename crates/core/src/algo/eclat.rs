//! Eclat-style depth-first vertical mining (Zaki et al.): each itemset
//! carries its group-id list; the search extends a prefix item by item,
//! intersecting lists. Compared to level-wise Apriori it trades the
//! subset-prune for cache-friendly depth-first list intersections — the
//! natural "one more member" of the paper's interoperable pool.

use super::executor::ShardExec;
use super::gidset::{GidSet, GidSetCtx, GidSetScratch};
use super::itemset::Itemset;
use super::{ItemsetMiner, LargeItemset, SimpleInput};

/// Depth-first vertical miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Eclat;

impl ItemsetMiner for Eclat {
    fn name(&self) -> &'static str {
        "eclat"
    }

    fn mine_sharded(&self, input: &SimpleInput, exec: &ShardExec) -> Vec<LargeItemset> {
        // Vertical layout: item → gid set (sharded build; representation
        // chosen per set from the merged global cardinality).
        let ctx = exec.gidset_ctx(input.groups.len());
        let gidsets = exec.gidsets(&input.groups, &ctx);
        let mut frontier: Vec<(u32, GidSet)> = gidsets
            .into_iter()
            .filter(|(_, gs)| gs.len() >= input.min_groups)
            .collect();
        frontier.sort_by_key(|(it, _)| *it);

        // The search trees rooted at each top-level item are independent,
        // so the frontier index is sharded across workers; the final sort
        // makes the inventory order worker-count invariant. Each shard
        // reuses one intersection scratch for its whole subtree walk.
        let min_groups = input.min_groups;
        let frontier_ref = &frontier;
        let ctx_ref = &ctx;
        let parts = exec.map_index_shards(frontier.len(), |range| {
            let mut out: Vec<LargeItemset> = Vec::new();
            let mut scratch = GidSetScratch::default();
            for i in range {
                let (item, gs) = &frontier_ref[i];
                let mut prefix: Itemset = vec![*item];
                out.push((prefix.clone(), gs.len()));
                let mut next: Vec<(u32, GidSet)> = Vec::new();
                for (other, other_gs) in &frontier_ref[i + 1..] {
                    if ctx_ref.intersect_into(gs, other_gs, &mut scratch) >= min_groups {
                        next.push((*other, ctx_ref.seal(&scratch)));
                    }
                }
                if !next.is_empty() {
                    dfs(
                        ctx_ref,
                        &next,
                        &mut prefix,
                        min_groups,
                        &mut scratch,
                        &mut out,
                    );
                }
            }
            out
        });
        let mut out: Vec<LargeItemset> = parts.into_iter().flatten().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Extend `prefix` with each frontier item; recurse on the conditional
/// frontier of items that still qualify.
fn dfs(
    ctx: &GidSetCtx<'_>,
    frontier: &[(u32, GidSet)],
    prefix: &mut Itemset,
    min_groups: u32,
    scratch: &mut GidSetScratch,
    out: &mut Vec<LargeItemset>,
) {
    for (i, (item, gs)) in frontier.iter().enumerate() {
        prefix.push(*item);
        out.push((prefix.clone(), gs.len()));
        // Conditional frontier: later items intersected with this set.
        let mut next: Vec<(u32, GidSet)> = Vec::new();
        for (other, other_gs) in &frontier[i + 1..] {
            if ctx.intersect_into(gs, other_gs, scratch) >= min_groups {
                next.push((*other, ctx.seal(scratch)));
            }
        }
        if !next.is_empty() {
            dfs(ctx, &next, prefix, min_groups, scratch, out);
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::apriori::AprioriGidList;
    use crate::algo::sort_itemsets;

    #[test]
    fn agrees_with_apriori() {
        let input = SimpleInput {
            groups: vec![
                vec![1, 2, 3],
                vec![1, 2],
                vec![2, 3],
                vec![1, 3],
                vec![1, 2, 3],
            ],
            total_groups: 5,
            min_groups: 2,
        };
        let mut a = AprioriGidList.mine(&input);
        let mut e = Eclat.mine(&input);
        sort_itemsets(&mut a);
        sort_itemsets(&mut e);
        assert_eq!(a, e);
    }

    #[test]
    fn deep_itemsets_found() {
        let input = SimpleInput {
            groups: vec![vec![1, 2, 3, 4, 5], vec![1, 2, 3, 4, 5]],
            total_groups: 2,
            min_groups: 2,
        };
        let got = Eclat.mine(&input);
        // 2^5 - 1 = 31 non-empty subsets, all with count 2.
        assert_eq!(got.len(), 31);
        assert!(got.iter().all(|(_, c)| *c == 2));
    }

    #[test]
    fn empty_input() {
        let input = SimpleInput {
            groups: vec![],
            total_groups: 0,
            min_groups: 1,
        };
        assert!(Eclat.mine(&input).is_empty());
    }
}
