//! Sampling-based mining (Toivonen, VLDB '96): mine a sample at a lowered
//! threshold, verify candidates and the negative border on the full data,
//! and fall back to a full run only if the border check fails.
//!
//! The fallback guarantees exactness, so this member of the pool agrees
//! with the others on every input — the sampling is purely a performance
//! strategy, as the paper's architecture requires.

use super::apriori::{mine_gidlist_with_border_exec, mine_gidlist_with_border_repr};
use super::executor::ShardExec;
use super::{ItemsetMiner, LargeItemset, SimpleInput};

/// Sampling miner parameters. The sample is deterministic (a fixed-stride
/// systematic sample seeded by `seed`) so runs are reproducible.
#[derive(Debug, Clone, Copy)]
pub struct Sampling {
    /// Fraction of groups to sample, in (0, 1].
    pub sample_fraction: f64,
    /// Multiplier (< 1) applied to the support threshold on the sample,
    /// lowering it to reduce the chance of missing a truly large itemset.
    pub threshold_scale: f64,
    /// Determines which systematic sample is drawn.
    pub seed: u64,
}

impl Default for Sampling {
    fn default() -> Self {
        Sampling {
            sample_fraction: 0.5,
            threshold_scale: 0.8,
            seed: 0x5eed,
        }
    }
}

impl ItemsetMiner for Sampling {
    fn name(&self) -> &'static str {
        "sampling"
    }

    fn mine_sharded(&self, input: &SimpleInput, exec: &ShardExec) -> Vec<LargeItemset> {
        if input.groups.is_empty() {
            return Vec::new();
        }
        let n = input.groups.len();
        let take = ((n as f64 * self.sample_fraction).ceil() as usize).clamp(1, n);
        let offset = (self.seed as usize) % n;
        let sample: Vec<Vec<u32>> = (0..take)
            .map(|i| input.groups[(offset + i * n / take) % n].clone())
            .collect();

        let fraction = input.min_groups as f64 / input.total_groups.max(1) as f64;
        let sample_share = take as f64 / n as f64 * input.total_groups as f64;
        let lowered = ((sample_share * fraction * self.threshold_scale).floor() as u32).max(1);

        // The sample pass inherits the caller's gid-set representation;
        // its gid universe is the sample itself.
        let (sample_large, mut border) =
            mine_gidlist_with_border_repr(&sample, lowered, exec.gidset_repr());

        // The negative border must cover the whole item universe: items
        // that never appeared in the sample are minimal non-members too.
        let in_sample: std::collections::HashSet<u32> =
            sample.iter().flat_map(|g| g.iter().copied()).collect();
        let mut unseen: Vec<u32> = input
            .groups
            .iter()
            .flat_map(|g| g.iter().copied())
            .filter(|i| !in_sample.contains(i))
            .collect();
        unseen.sort_unstable();
        unseen.dedup();
        border.extend(unseen.into_iter().map(|i| vec![i]));

        // Verify sample candidates AND the negative border on full data —
        // the verification scan is the full-data pass, so it runs sharded.
        let mut candidates: Vec<Vec<u32>> = sample_large.into_iter().map(|(s, _)| s).collect();
        let border_start = candidates.len();
        candidates.extend(border);
        let counted = exec.count_candidates(&input.groups, candidates);

        // If anything in the negative border is actually large, the sample
        // may have missed supersets: fall back to an exact full run.
        let border_failed = counted[border_start..]
            .iter()
            .any(|(_, c)| *c >= input.min_groups);
        if border_failed {
            let (large, _) = mine_gidlist_with_border_exec(&input.groups, input.min_groups, exec);
            return large;
        }
        counted
            .into_iter()
            .take(border_start)
            .filter(|(_, c)| *c >= input.min_groups)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::apriori::AprioriGidList;
    use crate::algo::sort_itemsets;

    #[test]
    fn agrees_with_apriori_on_skewed_data() {
        // Data engineered so a naive sample could miss items: item 9 only
        // appears in the second half of the groups.
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for i in 0..40 {
            if i < 20 {
                groups.push(vec![1, 2]);
            } else {
                groups.push(vec![1, 9]);
            }
        }
        let input = SimpleInput {
            groups,
            total_groups: 40,
            min_groups: 15,
        };
        for seed in [0, 1, 7, 13, 1000] {
            let miner = Sampling {
                seed,
                ..Sampling::default()
            };
            let mut got = miner.mine(&input);
            let mut expect = AprioriGidList.mine(&input);
            sort_itemsets(&mut got);
            sort_itemsets(&mut expect);
            assert_eq!(got, expect, "seed {seed}");
        }
    }

    #[test]
    fn tiny_inputs() {
        let input = SimpleInput {
            groups: vec![vec![3]],
            total_groups: 1,
            min_groups: 1,
        };
        assert_eq!(Sampling::default().mine(&input), vec![(vec![3], 1)]);
    }
}
