//! FP-Growth (Han, Pei & Yin): compress the groups into a frequent-pattern
//! tree, then mine recursively over conditional trees — no candidate
//! generation at all. Chronologically this postdates the paper (2000),
//! but the architecture's algorithm-interoperability contract (§3) means
//! it slots into the pool untouched: one more demonstration that the core
//! operator is swappable.

use std::collections::HashMap;

use super::executor::ShardExec;
use super::{ItemsetMiner, LargeItemset, SimpleInput};

/// FP-Growth miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpGrowth;

/// A node of the FP-tree. Children are kept in a small vector — fan-out
/// at any node is bounded by the number of frequent items.
struct Node {
    item: u32,
    count: u32,
    parent: usize,
    children: Vec<usize>,
}

/// An FP-tree over arena-allocated nodes, with a header table of all
/// occurrences per item.
struct Tree {
    nodes: Vec<Node>,
    header: HashMap<u32, Vec<usize>>,
}

impl Tree {
    fn new() -> Tree {
        Tree {
            nodes: vec![Node {
                item: u32::MAX,
                count: 0,
                parent: usize::MAX,
                children: Vec::new(),
            }],
            header: HashMap::new(),
        }
    }

    /// Insert one (ordered) item path with a count.
    fn insert(&mut self, path: &[u32], count: u32) {
        let mut at = 0usize;
        for &item in path {
            let found = self.nodes[at]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].item == item);
            at = match found {
                Some(c) => {
                    self.nodes[c].count += count;
                    c
                }
                None => {
                    let id = self.nodes.len();
                    self.nodes.push(Node {
                        item,
                        count,
                        parent: at,
                        children: Vec::new(),
                    });
                    self.nodes[at].children.push(id);
                    self.header.entry(item).or_default().push(id);
                    id
                }
            };
        }
    }

    /// The conditional pattern base of `item`: (prefix path, count) pairs.
    fn conditional_base(&self, item: u32) -> Vec<(Vec<u32>, u32)> {
        let mut out = Vec::new();
        for &node in self.header.get(&item).into_iter().flatten() {
            let count = self.nodes[node].count;
            let mut path = Vec::new();
            let mut at = self.nodes[node].parent;
            while at != 0 && at != usize::MAX {
                path.push(self.nodes[at].item);
                at = self.nodes[at].parent;
            }
            path.reverse();
            if !path.is_empty() {
                out.push((path, count));
            }
        }
        out
    }
}

/// Build a tree from weighted transactions, keeping only items frequent
/// within them and ordering each path by global frequency (descending,
/// ties by item id for determinism).
fn build_tree(transactions: &[(Vec<u32>, u32)], min_groups: u32) -> (Tree, Vec<u32>) {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for (items, count) in transactions {
        for &it in items {
            *counts.entry(it).or_insert(0) += count;
        }
    }
    let mut frequent: Vec<(u32, u32)> = counts
        .into_iter()
        .filter(|(_, c)| *c >= min_groups)
        .collect();
    frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let rank: HashMap<u32, usize> = frequent
        .iter()
        .enumerate()
        .map(|(i, (it, _))| (*it, i))
        .collect();

    let mut tree = Tree::new();
    for (items, count) in transactions {
        let mut path: Vec<u32> = items
            .iter()
            .copied()
            .filter(|it| rank.contains_key(it))
            .collect();
        path.sort_by_key(|it| rank[it]);
        path.dedup();
        if !path.is_empty() {
            tree.insert(&path, *count);
        }
    }
    // Items in *ascending* frequency for the mining order.
    let order: Vec<u32> = frequent.iter().rev().map(|(it, _)| *it).collect();
    (tree, order)
}

fn mine_tree(
    transactions: &[(Vec<u32>, u32)],
    min_groups: u32,
    suffix: &mut Vec<u32>,
    out: &mut Vec<LargeItemset>,
) {
    let (tree, order) = build_tree(transactions, min_groups);
    for &item in &order {
        let support: u32 = tree
            .header
            .get(&item)
            .map(|nodes| nodes.iter().map(|&n| tree.nodes[n].count).sum())
            .unwrap_or(0);
        if support < min_groups {
            continue;
        }
        // Itemsets are reported sorted by item id.
        let mut itemset: Vec<u32> = suffix.iter().copied().chain([item]).collect();
        itemset.sort_unstable();
        out.push((itemset, support));

        let base = tree.conditional_base(item);
        if !base.is_empty() {
            suffix.push(item);
            mine_tree(&base, min_groups, suffix, out);
            suffix.pop();
        }
    }
}

impl ItemsetMiner for FpGrowth {
    fn name(&self) -> &'static str {
        "fpgrowth"
    }

    fn mine_sharded(&self, input: &SimpleInput, exec: &ShardExec) -> Vec<LargeItemset> {
        let transactions: Vec<(Vec<u32>, u32)> =
            input.groups.iter().map(|g| (g.clone(), 1)).collect();
        // The global tree is built once and shared read-only; each
        // top-level item's conditional mining is independent, so the
        // mining-order index is sharded across workers. The final sort +
        // dedup normalises the order, as in the sequential path.
        let (tree, order) = build_tree(&transactions, input.min_groups);
        let min_groups = input.min_groups;
        let tree_ref = &tree;
        let order_ref = &order;
        let parts = exec.map_index_shards(order.len(), |range| {
            let mut out: Vec<LargeItemset> = Vec::new();
            for idx in range {
                let item = order_ref[idx];
                let support: u32 = tree_ref
                    .header
                    .get(&item)
                    .map(|nodes| nodes.iter().map(|&n| tree_ref.nodes[n].count).sum())
                    .unwrap_or(0);
                if support < min_groups {
                    continue;
                }
                out.push((vec![item], support));
                let base = tree_ref.conditional_base(item);
                if !base.is_empty() {
                    let mut suffix = vec![item];
                    mine_tree(&base, min_groups, &mut suffix, &mut out);
                }
            }
            out
        });
        let mut out: Vec<LargeItemset> = parts.into_iter().flatten().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out.dedup_by(|a, b| a.0 == b.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::apriori::AprioriGidList;
    use crate::algo::sort_itemsets;

    fn check_against_apriori(groups: Vec<Vec<u32>>, min_groups: u32) {
        let input = SimpleInput {
            total_groups: groups.len() as u32,
            groups,
            min_groups,
        };
        let mut a = AprioriGidList.mine(&input);
        let mut f = FpGrowth.mine(&input);
        sort_itemsets(&mut a);
        sort_itemsets(&mut f);
        assert_eq!(a, f);
    }

    #[test]
    fn matches_apriori_on_classic_example() {
        // The example from the FP-Growth paper.
        check_against_apriori(
            vec![
                vec![1, 2, 5],
                vec![2, 4],
                vec![2, 3],
                vec![1, 2, 4],
                vec![1, 3],
                vec![2, 3],
                vec![1, 3],
                vec![1, 2, 3, 5],
                vec![1, 2, 3],
            ],
            2,
        );
    }

    #[test]
    fn matches_apriori_across_thresholds() {
        let groups = vec![
            vec![1, 2, 3, 4],
            vec![2, 3, 4],
            vec![1, 3],
            vec![1, 2, 4],
            vec![1, 2, 3],
            vec![4],
        ];
        for ming in 1..=4 {
            check_against_apriori(groups.clone(), ming);
        }
    }

    #[test]
    fn single_path_tree() {
        check_against_apriori(vec![vec![1, 2, 3], vec![1, 2, 3], vec![1, 2, 3]], 2);
    }

    #[test]
    fn empty_input() {
        let input = SimpleInput {
            groups: vec![],
            total_groups: 0,
            min_groups: 1,
        };
        assert!(FpGrowth.mine(&input).is_empty());
    }
}
