//! The two-pass Partition algorithm (Savasere, Omiecinski & Navathe,
//! VLDB '95): mine each partition of the groups locally, union the local
//! inventories into a global candidate set, then count candidates exactly
//! in a second pass.

use std::collections::HashSet;

use super::apriori::mine_gidlist_with_border_repr;
use super::executor::ShardExec;
use super::itemset::Itemset;
use super::{ItemsetMiner, LargeItemset, SimpleInput};

/// Partition-based miner. `partitions` controls the split; each partition
/// is mined with a proportionally scaled local threshold. With `parallel`
/// set, partitions are mined on OS threads — the original paper's main
/// selling point (independent partition passes) maps directly onto cores.
#[derive(Debug, Clone, Copy)]
pub struct Partition {
    pub partitions: usize,
    pub parallel: bool,
}

impl Default for Partition {
    fn default() -> Self {
        Partition {
            partitions: 4,
            parallel: false,
        }
    }
}

impl Partition {
    /// A parallel variant with one partition per available core.
    pub fn parallel() -> Partition {
        Partition {
            partitions: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            parallel: true,
        }
    }
}

impl ItemsetMiner for Partition {
    fn name(&self) -> &'static str {
        if self.parallel {
            "partition-par"
        } else {
            "partition"
        }
    }

    fn mine_sharded(&self, input: &SimpleInput, exec: &ShardExec) -> Vec<LargeItemset> {
        if input.groups.is_empty() {
            return Vec::new();
        }
        // The legacy `parallel` flag predates the engine-level worker
        // knob: when set and no multi-worker executor was handed down,
        // spin up a core-per-worker executor locally so `partition-par`
        // keeps its historical behaviour through plain `mine()`.
        let own_exec;
        let exec = if self.parallel && exec.workers() <= 1 {
            own_exec = ShardExec::new(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4),
            )
            .with_gidset_repr(exec.gidset_repr());
            &own_exec
        } else {
            exec
        };

        let p = self.partitions.clamp(1, input.groups.len());
        let fraction = input.min_groups as f64 / input.total_groups.max(1) as f64;
        let chunk = input.groups.len().div_ceil(p);

        // Local share of the *total* group population, so empty groups
        // (groups without large items) are attributed proportionally.
        let local_min = |part_len: usize| -> u32 {
            let local_total =
                part_len as f64 / input.groups.len() as f64 * input.total_groups as f64;
            ((local_total * fraction).ceil() as u32).max(1)
        };

        // Pass 1: local mining. An itemset globally large must be locally
        // large (at the scaled threshold) in at least one partition, so the
        // union of local inventories is a complete candidate set. The
        // partition count is an algorithm parameter independent of the
        // worker count, so the *list of partitions* is sharded across
        // workers; the candidate union is order-insensitive anyway.
        // Local passes inherit the caller's gid-set representation; each
        // pass's gid universe is its own partition slice (local gids run
        // 0..part.len()), so the density heuristic scales with it.
        let repr = exec.gidset_repr();
        let parts: Vec<&[Vec<u32>]> = input.groups.chunks(chunk).collect();
        let locals = exec.map_shards(&parts, |_, assigned| {
            assigned
                .iter()
                .map(|part| mine_gidlist_with_border_repr(part, local_min(part.len()), repr).0)
                .collect::<Vec<Vec<LargeItemset>>>()
        });
        let mut candidates: HashSet<Itemset> = HashSet::new();
        for batch in locals {
            for local_large in batch {
                for (set, _) in local_large {
                    candidates.insert(set);
                }
            }
        }

        // Pass 2: exact global counts, sharded over the groups with
        // per-shard counts summed — this pass dominates at low
        // thresholds, so it is where the parallel win actually lives.
        let mut candidates: Vec<Itemset> = candidates.into_iter().collect();
        candidates.sort();
        exec.count_candidates(&input.groups, candidates)
            .into_iter()
            .filter(|(_, c)| *c >= input.min_groups)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::apriori::AprioriGidList;
    use crate::algo::sort_itemsets;

    fn input(min_groups: u32) -> SimpleInput {
        SimpleInput {
            groups: vec![
                vec![1, 2, 3],
                vec![1, 2],
                vec![2, 3],
                vec![1, 3],
                vec![1, 2, 3],
                vec![2],
                vec![1, 2],
                vec![3],
            ],
            total_groups: 8,
            min_groups,
        }
    }

    #[test]
    fn matches_apriori_across_partition_counts() {
        for parts in [1, 2, 3, 8] {
            for ming in [1, 2, 3, 4] {
                let inp = input(ming);
                let mut expect = AprioriGidList.mine(&inp);
                let mut got = Partition {
                    partitions: parts,
                    parallel: false,
                }
                .mine(&inp);
                sort_itemsets(&mut expect);
                sort_itemsets(&mut got);
                assert_eq!(got, expect, "parts={parts} ming={ming}");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let inp = input(2);
        let mut seq = Partition::default().mine(&inp);
        let mut par = Partition::parallel().mine(&inp);
        crate::algo::sort_itemsets(&mut seq);
        crate::algo::sort_itemsets(&mut par);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let inp = SimpleInput {
            groups: vec![],
            total_groups: 0,
            min_groups: 1,
        };
        assert!(Partition::default().mine(&inp).is_empty());
    }
}
