//! Apriori variants: gid-list based (the paper's §4.3.1 description) and
//! classical candidate counting.

use super::executor::ShardExec;
use super::gidset::{GidSet, GidSetRepr, GidSetScratch};
use super::itemset::{apriori_join, is_subset, Itemset};
use super::trie::ItemsetTrie;
use super::{ItemsetMiner, LargeItemset, SimpleInput};

/// Apriori with group-identifier lists: each itemset carries the sorted
/// list of groups containing it, and the list of a joined candidate is the
/// intersection of its parents' lists. This is the variant §4.3.1 sketches
/// ("support of an itemset is evaluated by counting elements in an
/// associated list that contains identifiers of groups").
#[derive(Debug, Clone, Copy, Default)]
pub struct AprioriGidList;

impl ItemsetMiner for AprioriGidList {
    fn name(&self) -> &'static str {
        "apriori-gidlist"
    }

    fn mine_sharded(&self, input: &SimpleInput, exec: &ShardExec) -> Vec<LargeItemset> {
        let (large, _) = mine_gidlist_with_border_exec(&input.groups, input.min_groups, exec);
        large
    }
}

/// Gid-list mining that also reports the negative border (candidates that
/// were generated and failed the threshold) — needed by the sampling
/// algorithm's safety check.
pub fn mine_gidlist_with_border(
    groups: &[Vec<u32>],
    min_groups: u32,
) -> (Vec<LargeItemset>, Vec<Itemset>) {
    mine_gidlist_with_border_exec(groups, min_groups, &ShardExec::sequential())
}

/// [`mine_gidlist_with_border`] on a fresh sequential executor with a
/// pinned gid-set representation — the entry point the partition and
/// sampling miners use for their inner passes, so a caller's
/// representation choice propagates into them (the inner pass's gid
/// universe is the local group slice, keeping the density heuristic
/// meaningful).
pub fn mine_gidlist_with_border_repr(
    groups: &[Vec<u32>],
    min_groups: u32,
    repr: GidSetRepr,
) -> (Vec<LargeItemset>, Vec<Itemset>) {
    mine_gidlist_with_border_exec(
        groups,
        min_groups,
        &ShardExec::sequential().with_gidset_repr(repr),
    )
}

/// [`mine_gidlist_with_border`] with an explicit shard executor: the L1
/// gid-list build and the per-level join/intersection step both run
/// sharded. The join shards partition the *outer* index of the candidate
/// join, and shard outputs are concatenated in shard order — exactly the
/// sequential iteration order, so the result is worker-count invariant.
pub fn mine_gidlist_with_border_exec(
    groups: &[Vec<u32>],
    min_groups: u32,
    exec: &ShardExec,
) -> (Vec<LargeItemset>, Vec<Itemset>) {
    let mut large: Vec<LargeItemset> = Vec::new();
    let mut border: Vec<Itemset> = Vec::new();

    // L1 with gid sets, built shard-wise (the underlying lists come out
    // sorted because shards are contiguous and merged in order; the
    // hybrid representation is chosen per set from the merged global
    // cardinality, so it is worker-count invariant too).
    let ctx = exec.gidset_ctx(groups.len());
    let mut gidsets = exec.gidsets(groups, &ctx);
    let mut level: Vec<(Itemset, GidSet)> = Vec::new();
    let mut items: Vec<u32> = gidsets.keys().copied().collect();
    items.sort_unstable();
    let l1_generated = items.len() as u64;
    for it in items {
        let gs = gidsets.remove(&it).unwrap();
        if gs.len() >= min_groups {
            level.push((vec![it], gs));
        } else {
            border.push(vec![it]);
        }
    }
    exec.note_level(1, l1_generated, border.len() as u64);

    while !level.is_empty() {
        for (set, gs) in &level {
            large.push((set.clone(), gs.len()));
        }
        // Join step. `level` is sorted lexicographically, so joinable
        // prefixes are adjacent runs; the outer index is sharded across
        // workers. The prune probes a prefix trie over the level (shared
        // immutably across shards), and intersections run through a
        // per-shard scratch buffer so failed candidates never allocate.
        let trie = ItemsetTrie::from_sets(level.iter().map(|(s, _)| s.as_slice()));
        let level_ref = &level;
        let (trie_ref, ctx_ref) = (&trie, &ctx);
        let parts = exec.map_index_shards(level.len(), |range| {
            let mut next: Vec<(Itemset, GidSet)> = Vec::new();
            let mut failed: Vec<Itemset> = Vec::new();
            let mut scratch = GidSetScratch::default();
            for i in range {
                for j in (i + 1)..level_ref.len() {
                    let Some(cand) = apriori_join(&level_ref[i].0, &level_ref[j].0) else {
                        break; // sorted: once prefixes diverge, no more joins
                    };
                    // Prune: every (k-1)-subset must be large.
                    if !trie_ref.contains_all_immediate_subsets(&cand) {
                        continue;
                    }
                    let support =
                        ctx_ref.intersect_into(&level_ref[i].1, &level_ref[j].1, &mut scratch);
                    if support >= min_groups {
                        next.push((cand, ctx_ref.seal(&scratch)));
                    } else {
                        failed.push(cand);
                    }
                }
            }
            (next, failed)
        });
        exec.note_trie(trie.node_count() as u64, trie.take_lookups());
        let next_size = level[0].0.len() as u32 + 1;
        let mut next: Vec<(Itemset, GidSet)> = Vec::new();
        let mut failed = 0u64;
        for (n, f) in parts {
            next.extend(n);
            failed += f.len() as u64;
            border.extend(f);
        }
        exec.note_level(next_size, next.len() as u64 + failed, failed);
        level = next;
    }
    (large, border)
}

/// Classical Apriori: candidates generated level-wise, support obtained by
/// scanning the groups and testing containment.
#[derive(Debug, Clone, Copy, Default)]
pub struct AprioriCount;

impl ItemsetMiner for AprioriCount {
    fn name(&self) -> &'static str {
        "apriori-count"
    }

    fn mine_sharded(&self, input: &SimpleInput, exec: &ShardExec) -> Vec<LargeItemset> {
        let mut large: Vec<LargeItemset> = Vec::new();

        // L1: sharded singleton scan.
        let counts = exec.item_counts(&input.groups);
        let l1_generated = counts.len() as u64;
        let mut level: Vec<LargeItemset> = counts
            .into_iter()
            .filter(|(_, c)| *c >= input.min_groups)
            .map(|(it, c)| (vec![it], c))
            .collect();
        level.sort_by(|a, b| a.0.cmp(&b.0));
        exec.note_level(1, l1_generated, l1_generated - level.len() as u64);

        while !level.is_empty() {
            large.extend(level.iter().cloned());
            let trie = ItemsetTrie::from_sets(level.iter().map(|(s, _)| s.as_slice()));
            let level_ref = &level;
            let trie_ref = &trie;
            // Candidate generation sharded over the outer join index;
            // shard outputs concatenate into the sequential order. The
            // subset prune walks the shared prefix trie.
            let parts = exec.map_index_shards(level.len(), |range| {
                let mut cands: Vec<Itemset> = Vec::new();
                for i in range {
                    for j in (i + 1)..level_ref.len() {
                        let Some(cand) = apriori_join(&level_ref[i].0, &level_ref[j].0) else {
                            break;
                        };
                        if trie_ref.contains_all_immediate_subsets(&cand) {
                            cands.push(cand);
                        }
                    }
                }
                cands
            });
            exec.note_trie(trie.node_count() as u64, trie.take_lookups());
            let candidates: Vec<Itemset> = parts.into_iter().flatten().collect();
            let next_size = level[0].0.len() as u32 + 1;
            let generated = candidates.len() as u64;
            // The support scan — the pass that dominates — is sharded
            // over the groups with per-shard counts summed positionally.
            level = exec
                .count_candidates(&input.groups, candidates)
                .into_iter()
                .filter(|(_, c)| *c >= input.min_groups)
                .collect();
            exec.note_level(next_size, generated, generated - level.len() as u64);
        }
        large
    }
}

/// Count each candidate's support by one pass over the groups.
pub fn count_candidates(groups: &[Vec<u32>], candidates: Vec<Itemset>) -> Vec<LargeItemset> {
    let mut counts = vec![0u32; candidates.len()];
    for items in groups {
        for (i, cand) in candidates.iter().enumerate() {
            if is_subset(cand, items) {
                counts[i] += 1;
            }
        }
    }
    candidates.into_iter().zip(counts).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::sort_itemsets;

    fn groups() -> Vec<Vec<u32>> {
        vec![
            vec![1, 2, 3, 4],
            vec![1, 2, 4],
            vec![1, 2],
            vec![2, 3, 4],
            vec![2, 3],
            vec![3, 4],
            vec![2, 4],
        ]
    }

    #[test]
    fn gidlist_finds_classic_inventory() {
        let input = SimpleInput {
            groups: groups(),
            total_groups: 7,
            min_groups: 3,
        };
        let mut got = AprioriGidList.mine(&input);
        sort_itemsets(&mut got);
        // Hand-checked counts.
        assert!(got.contains(&(vec![2], 6)));
        assert!(got.contains(&(vec![2, 4], 4)));
        assert!(got.contains(&(vec![1, 2], 3)));
        assert!(got.contains(&(vec![3, 4], 3)));
        assert!(
            !got.iter().any(|(s, _)| s == &vec![1, 3]),
            "1,3 occurs twice only"
        );
    }

    #[test]
    fn count_variant_matches_gidlist() {
        let input = SimpleInput {
            groups: groups(),
            total_groups: 7,
            min_groups: 2,
        };
        let mut a = AprioriGidList.mine(&input);
        let mut b = AprioriCount.mine(&input);
        sort_itemsets(&mut a);
        sort_itemsets(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn border_contains_failed_candidates() {
        let (large, border) = mine_gidlist_with_border(&groups(), 3);
        assert!(!large.iter().any(|(s, _)| s == &vec![1, 3]));
        assert!(border.contains(&vec![1, 3]));
    }

    #[test]
    fn empty_input_no_itemsets() {
        let input = SimpleInput {
            groups: vec![],
            total_groups: 0,
            min_groups: 1,
        };
        assert!(AprioriGidList.mine(&input).is_empty());
        assert!(AprioriCount.mine(&input).is_empty());
    }

    #[test]
    fn threshold_one_keeps_everything() {
        let input = SimpleInput {
            groups: vec![vec![5, 9]],
            total_groups: 1,
            min_groups: 1,
        };
        let mut got = AprioriGidList.mine(&input);
        sort_itemsets(&mut got);
        assert_eq!(got, vec![(vec![5], 1), (vec![5, 9], 1), (vec![9], 1)]);
    }
}
