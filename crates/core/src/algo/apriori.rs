//! Apriori variants: gid-list based (the paper's §4.3.1 description) and
//! classical candidate counting.

use std::collections::HashMap;

use super::itemset::{apriori_join, immediate_subsets, intersect, is_subset, Itemset};
use super::{ItemsetMiner, LargeItemset, SimpleInput};

/// Apriori with group-identifier lists: each itemset carries the sorted
/// list of groups containing it, and the list of a joined candidate is the
/// intersection of its parents' lists. This is the variant §4.3.1 sketches
/// ("support of an itemset is evaluated by counting elements in an
/// associated list that contains identifiers of groups").
#[derive(Debug, Clone, Copy, Default)]
pub struct AprioriGidList;

impl ItemsetMiner for AprioriGidList {
    fn name(&self) -> &'static str {
        "apriori-gidlist"
    }

    fn mine(&self, input: &SimpleInput) -> Vec<LargeItemset> {
        let (large, _) = mine_gidlist_with_border(&input.groups, input.min_groups);
        large
    }
}

/// Gid-list mining that also reports the negative border (candidates that
/// were generated and failed the threshold) — needed by the sampling
/// algorithm's safety check.
pub fn mine_gidlist_with_border(
    groups: &[Vec<u32>],
    min_groups: u32,
) -> (Vec<LargeItemset>, Vec<Itemset>) {
    let mut large: Vec<LargeItemset> = Vec::new();
    let mut border: Vec<Itemset> = Vec::new();

    // L1 with gid lists.
    let mut gidlists: HashMap<u32, Vec<u32>> = HashMap::new();
    for (g, items) in groups.iter().enumerate() {
        for &it in items {
            gidlists.entry(it).or_default().push(g as u32);
        }
    }
    let mut level: Vec<(Itemset, Vec<u32>)> = Vec::new();
    let mut items: Vec<u32> = gidlists.keys().copied().collect();
    items.sort_unstable();
    for it in items {
        let gl = gidlists.remove(&it).unwrap(); // already sorted: groups scanned in order
        if gl.len() as u32 >= min_groups {
            level.push((vec![it], gl));
        } else {
            border.push(vec![it]);
        }
    }

    while !level.is_empty() {
        for (set, gl) in &level {
            large.push((set.clone(), gl.len() as u32));
        }
        // Join step. `level` is sorted lexicographically, so joinable
        // prefixes are adjacent runs.
        let mut next: Vec<(Itemset, Vec<u32>)> = Vec::new();
        let keys: HashMap<&[u32], ()> = level.iter().map(|(s, _)| (s.as_slice(), ())).collect();
        for i in 0..level.len() {
            for j in (i + 1)..level.len() {
                let Some(cand) = apriori_join(&level[i].0, &level[j].0) else {
                    break; // sorted: once prefixes diverge, no more joins
                };
                // Prune: every (k-1)-subset must be large.
                if !immediate_subsets(&cand).all(|s| keys.contains_key(s.as_slice())) {
                    continue;
                }
                let gl = intersect(&level[i].1, &level[j].1);
                if gl.len() as u32 >= min_groups {
                    next.push((cand, gl));
                } else {
                    border.push(cand);
                }
            }
        }
        level = next;
    }
    (large, border)
}

/// Classical Apriori: candidates generated level-wise, support obtained by
/// scanning the groups and testing containment.
#[derive(Debug, Clone, Copy, Default)]
pub struct AprioriCount;

impl ItemsetMiner for AprioriCount {
    fn name(&self) -> &'static str {
        "apriori-count"
    }

    fn mine(&self, input: &SimpleInput) -> Vec<LargeItemset> {
        let mut large: Vec<LargeItemset> = Vec::new();

        // L1.
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for items in &input.groups {
            for &it in items {
                *counts.entry(it).or_insert(0) += 1;
            }
        }
        let mut level: Vec<LargeItemset> = counts
            .into_iter()
            .filter(|(_, c)| *c >= input.min_groups)
            .map(|(it, c)| (vec![it], c))
            .collect();
        level.sort_by(|a, b| a.0.cmp(&b.0));

        while !level.is_empty() {
            large.extend(level.iter().cloned());
            let keys: HashMap<&[u32], ()> =
                level.iter().map(|(s, _)| (s.as_slice(), ())).collect();
            let mut candidates: Vec<Itemset> = Vec::new();
            for i in 0..level.len() {
                for j in (i + 1)..level.len() {
                    let Some(cand) = apriori_join(&level[i].0, &level[j].0) else {
                        break;
                    };
                    if immediate_subsets(&cand).all(|s| keys.contains_key(s.as_slice())) {
                        candidates.push(cand);
                    }
                }
            }
            level = count_candidates(&input.groups, candidates)
                .into_iter()
                .filter(|(_, c)| *c >= input.min_groups)
                .collect();
        }
        large
    }
}

/// Count each candidate's support by one pass over the groups.
pub fn count_candidates(groups: &[Vec<u32>], candidates: Vec<Itemset>) -> Vec<LargeItemset> {
    let mut counts = vec![0u32; candidates.len()];
    for items in groups {
        for (i, cand) in candidates.iter().enumerate() {
            if is_subset(cand, items) {
                counts[i] += 1;
            }
        }
    }
    candidates.into_iter().zip(counts).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::sort_itemsets;

    fn groups() -> Vec<Vec<u32>> {
        vec![
            vec![1, 2, 3, 4],
            vec![1, 2, 4],
            vec![1, 2],
            vec![2, 3, 4],
            vec![2, 3],
            vec![3, 4],
            vec![2, 4],
        ]
    }

    #[test]
    fn gidlist_finds_classic_inventory() {
        let input = SimpleInput {
            groups: groups(),
            total_groups: 7,
            min_groups: 3,
        };
        let mut got = AprioriGidList.mine(&input);
        sort_itemsets(&mut got);
        // Hand-checked counts.
        assert!(got.contains(&(vec![2], 6)));
        assert!(got.contains(&(vec![2, 4], 4)));
        assert!(got.contains(&(vec![1, 2], 3)));
        assert!(got.contains(&(vec![3, 4], 3)));
        assert!(!got.iter().any(|(s, _)| s == &vec![1, 3]), "1,3 occurs twice only");
    }

    #[test]
    fn count_variant_matches_gidlist() {
        let input = SimpleInput {
            groups: groups(),
            total_groups: 7,
            min_groups: 2,
        };
        let mut a = AprioriGidList.mine(&input);
        let mut b = AprioriCount.mine(&input);
        sort_itemsets(&mut a);
        sort_itemsets(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn border_contains_failed_candidates() {
        let (large, border) = mine_gidlist_with_border(&groups(), 3);
        assert!(!large.iter().any(|(s, _)| s == &vec![1, 3]));
        assert!(border.contains(&vec![1, 3]));
    }

    #[test]
    fn empty_input_no_itemsets() {
        let input = SimpleInput {
            groups: vec![],
            total_groups: 0,
            min_groups: 1,
        };
        assert!(AprioriGidList.mine(&input).is_empty());
        assert!(AprioriCount.mine(&input).is_empty());
    }

    #[test]
    fn threshold_one_keeps_everything() {
        let input = SimpleInput {
            groups: vec![vec![5, 9]],
            total_groups: 1,
            min_groups: 1,
        };
        let mut got = AprioriGidList.mine(&input);
        sort_itemsets(&mut got);
        assert_eq!(got, vec![(vec![5], 1), (vec![5, 9], 1), (vec![9], 1)]);
    }
}
