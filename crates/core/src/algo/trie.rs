//! Candidate prefix-trie over sorted itemsets.
//!
//! Two of the core operator's hot loops used to pay per-candidate
//! allocation for subset reasoning:
//!
//! * the Apriori prune ("every (k-1)-subset must be large") materialised
//!   each immediate subset as a fresh `Vec` to probe a hash map;
//! * rule extraction materialised each split's body to look up its
//!   support count.
//!
//! [`ItemsetTrie`] replaces both with allocation-free walks: itemsets are
//! paths from the root, children are sorted `(item, node)` pairs probed
//! by binary search, and "subset with one element skipped" is just a walk
//! that skips one edge. Nodes live in a flat arena (`Vec`), so the whole
//! structure is two allocations' worth of cache-friendly storage and can
//! be shared immutably across shard closures.
//!
//! Lookup counts are recorded in a relaxed atomic so concurrent shards
//! can probe without locking; the count is worker-count invariant because
//! the set of probes (and each probe's early exit) depends only on the
//! candidate, never on the sharding.

use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug, Default)]
struct TrieNode {
    /// Sorted `(item, child index)` pairs.
    children: Vec<(u32, u32)>,
    /// `Some(count)` iff an inserted itemset ends here.
    count: Option<u32>,
}

/// A prefix trie over strictly ascending itemsets (node 0 is the root).
#[derive(Debug, Default)]
pub struct ItemsetTrie {
    nodes: Vec<TrieNode>,
    lookups: AtomicU64,
}

impl ItemsetTrie {
    /// An empty trie (just the root node).
    pub fn new() -> ItemsetTrie {
        ItemsetTrie {
            nodes: vec![TrieNode::default()],
            lookups: AtomicU64::new(0),
        }
    }

    /// A trie containing every set of `sets` (with count 0 — enough for
    /// membership pruning).
    pub fn from_sets<'a>(sets: impl IntoIterator<Item = &'a [u32]>) -> ItemsetTrie {
        let mut trie = ItemsetTrie::new();
        for set in sets {
            trie.insert(set, 0);
        }
        trie
    }

    /// Insert `set` with its support `count` (overwrites on re-insert).
    pub fn insert(&mut self, set: &[u32], count: u32) {
        let mut node = 0u32;
        for &item in set {
            let pos = self.nodes[node as usize]
                .children
                .binary_search_by_key(&item, |c| c.0);
            node = match pos {
                Ok(i) => self.nodes[node as usize].children[i].1,
                Err(i) => {
                    let fresh = self.nodes.len() as u32;
                    self.nodes.push(TrieNode::default());
                    self.nodes[node as usize].children.insert(i, (item, fresh));
                    fresh
                }
            };
        }
        self.nodes[node as usize].count = Some(count);
    }

    /// Follow the `item` edge out of `node`, if present.
    fn descend(&self, node: u32, item: u32) -> Option<u32> {
        let children = &self.nodes[node as usize].children;
        children
            .binary_search_by_key(&item, |c| c.0)
            .ok()
            .map(|i| children[i].1)
    }

    /// The stored count for `set`, if it was inserted.
    pub fn get(&self, set: &[u32]) -> Option<u32> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut node = 0u32;
        for &item in set {
            node = self.descend(node, item)?;
        }
        self.nodes[node as usize].count
    }

    /// Was `set` inserted?
    pub fn contains(&self, set: &[u32]) -> bool {
        self.get(set).is_some()
    }

    /// The stored count for `set \ skip` — both strictly ascending,
    /// `skip ⊆ set`. This is the rule-extraction body lookup: the body is
    /// never materialised, the walk just skips the head's edges.
    pub fn get_excluding(&self, set: &[u32], skip: &[u32]) -> Option<u32> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut node = 0u32;
        let mut k = 0usize;
        for &item in set {
            if k < skip.len() && skip[k] == item {
                k += 1;
                continue;
            }
            node = self.descend(node, item)?;
        }
        self.nodes[node as usize].count
    }

    /// The Apriori prune: is every (k-1)-subset of `cand` present? Each
    /// subset is a walk that skips one position — no subset is ever
    /// materialised.
    pub fn contains_all_immediate_subsets(&self, cand: &[u32]) -> bool {
        for skip in 0..cand.len() {
            self.lookups.fetch_add(1, Ordering::Relaxed);
            let mut node = 0u32;
            let mut present = true;
            for (i, &item) in cand.iter().enumerate() {
                if i == skip {
                    continue;
                }
                match self.descend(node, item) {
                    Some(next) => node = next,
                    None => {
                        present = false;
                        break;
                    }
                }
            }
            if !present || self.nodes[node as usize].count.is_none() {
                return false;
            }
        }
        true
    }

    /// Arena size including the root (→ `core.trie.nodes` telemetry).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Drain the lookup counter (→ `core.trie.lookups` telemetry).
    pub fn take_lookups(&self) -> u64 {
        self.lookups.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut trie = ItemsetTrie::new();
        trie.insert(&[1, 2, 3], 7);
        trie.insert(&[1, 2], 9);
        trie.insert(&[4], 2);
        assert_eq!(trie.get(&[1, 2, 3]), Some(7));
        assert_eq!(trie.get(&[1, 2]), Some(9));
        assert_eq!(trie.get(&[4]), Some(2));
        assert_eq!(trie.get(&[1]), None, "prefix node, never inserted");
        assert_eq!(trie.get(&[2, 3]), None);
        assert!(!trie.contains(&[9]));
    }

    #[test]
    fn get_excluding_skips_head_items() {
        let mut trie = ItemsetTrie::new();
        trie.insert(&[1, 3], 5);
        trie.insert(&[2], 6);
        // set {1,2,3} minus head {2} = body {1,3}.
        assert_eq!(trie.get_excluding(&[1, 2, 3], &[2]), Some(5));
        // minus head {1,3} = body {2}.
        assert_eq!(trie.get_excluding(&[1, 2, 3], &[1, 3]), Some(6));
        assert_eq!(
            trie.get_excluding(&[1, 2, 3], &[3]),
            None,
            "body 1-2 absent"
        );
    }

    #[test]
    fn prune_requires_every_immediate_subset() {
        let trie = ItemsetTrie::from_sets([&[1u32, 2][..], &[1, 3], &[2, 3]]);
        assert!(trie.contains_all_immediate_subsets(&[1, 2, 3]));
        let partial = ItemsetTrie::from_sets([&[1u32, 2][..], &[1, 3]]);
        assert!(
            !partial.contains_all_immediate_subsets(&[1, 2, 3]),
            "{{2,3}} missing"
        );
    }

    #[test]
    fn nodes_share_prefixes() {
        let trie = ItemsetTrie::from_sets([&[1u32, 2, 3][..], &[1, 2, 4]]);
        // root + 1 + 2 + {3,4} = 5 nodes.
        assert_eq!(trie.node_count(), 5);
    }

    #[test]
    fn lookups_drain() {
        let trie = ItemsetTrie::from_sets([&[1u32][..], &[2]]);
        trie.get(&[1]);
        trie.contains_all_immediate_subsets(&[1, 2]);
        assert_eq!(trie.take_lookups(), 3, "one get + two subset probes");
        assert_eq!(trie.take_lookups(), 0, "drained");
    }
}
