//! Fingerprint-keyed cache of *mined results*: the interactive-session
//! companion of the preprocess artifact cache (`cache.rs`).
//!
//! Where [`crate::cache::PreprocessCache`] skips `Q0`..`Q8` on a rerun,
//! this cache skips the core operator itself, per *Interactive
//! Constrained Association Rule Mining* (Goethals & Van den Bussche):
//! a session keeps the frequent-itemset inventory of each mined
//! statement — every itemset with its exact group-support and gid-set —
//! and answers refined reruns by *filtering*:
//!
//! * **Tightened support** (`min_groups' ≥ min_groups`): by
//!   anti-monotonicity the inventory filtered at the new threshold *is*
//!   the inventory a cold mine would produce, so rules regenerated from
//!   it (same [`crate::algo::rules_from_itemsets_counted`], same integer
//!   counts, same float divisions) are bit-identical to a cold mine.
//! * **Any confidence change**: rules are re-derived from itemsets, so
//!   confidence refinement is free in both directions — the inventory
//!   does not depend on it.
//! * **Loosened support**: a clean miss — the cache cannot know itemsets
//!   it never mined.
//! * **Source-table deltas** (INSERT/DELETE rows since the cached
//!   version, reported by [`relational::Table::changes_since`]):
//!   incremental re-mining in the FUP style. Gid-sets of cached itemsets
//!   are updated for the affected groups only; itemsets that may have
//!   *become* frequent must occur in at least
//!   `min_groups' − min_groups + 1` of the grown/new groups, so only the
//!   small delta is mined for candidates, which are then verified with
//!   exact counts. A delta beyond the row budget (or crossing an
//!   UPDATE/TRUNCATE, which the table log does not replay) falls back to
//!   a full mine.
//!
//! The cache works in *value space* (type-tagged renderings of the
//! grouping and item attributes), so entries survive re-encoding: a warm
//! serve maps items onto the current `Bset` identifiers right before
//! rule generation, and the pipeline still stores and decodes output
//! tables exactly as a cold run would. Entries are restricted to
//! statements whose grouping the cache can replay from raw rows —
//! simple class, a single FROM table, no source or group condition
//! (the same shape the fused preprocess pass accepts); everything else
//! simply misses. Staleness is ruled out by the same per-table version
//! stamps the preprocess cache uses.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex};

use relational::{Database, TableDelta, Value};

use crate::algo::{rules_from_itemsets_counted, sort_rules, EncodedRule, LargeItemset};
use crate::ast::MineRuleStatement;
use crate::cache::{PreprocessCache, StoreOutcome};
use crate::directives::StatementClass;
use crate::error::Result;
use crate::preprocess::{min_groups_for, PreprocessReport};
use crate::translator::Translation;

/// Most-recently-used mined-result sets kept; older entries are evicted.
const MAX_ENTRIES: usize = 8;

/// Delta re-mining budget: a delta with more rows than
/// `max(BUDGET_MIN_ROWS, cached rows / 4)` falls back to a full mine.
const BUDGET_MIN_ROWS: usize = 64;

/// Candidate cap for the delta miner: enumerating more than this many
/// delta-frequent itemsets aborts incremental re-mining (full mine).
const MAX_DELTA_CANDIDATES: usize = 4096;

/// A group slot: the group's key plus a multiset of its item renderings
/// (values are row multiplicities — an item belongs to the group while
/// its count is positive, matching the preprocessor's DISTINCT).
#[derive(Debug, Clone)]
struct GroupSlot {
    key: String,
    items: BTreeMap<String, u32>,
}

impl GroupSlot {
    fn row_count(&self) -> u64 {
        self.items.values().map(|&c| c as u64).sum()
    }

    fn item_set(&self) -> HashSet<&str> {
        self.items
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(k, _)| k.as_str())
            .collect()
    }
}

/// A cached frequent itemset: value-space items (sorted) plus the sorted
/// slot ids of every group containing it. The exact group-support is
/// `gids.len()`.
#[derive(Debug, Clone)]
struct CachedItemset {
    items: Vec<String>,
    gids: Vec<u32>,
}

/// One cached mined result with its validity conditions.
#[derive(Debug, Clone)]
struct MineEntry {
    fingerprint: String,
    /// `(lowercase table name, version)` of the FROM table at capture.
    table_versions: Vec<(String, u64)>,
    /// The inventory is complete down to this absolute threshold.
    min_groups: u64,
    /// EXTRACTING thresholds at capture, to tell refines from reruns.
    capture_support: f64,
    capture_confidence: f64,
    /// Live groups (`:totg` of the cached snapshot).
    total_groups: u64,
    /// Group slots; `None` marks a deleted group (its id is retired).
    slots: Vec<Option<GroupSlot>>,
    /// Group key → slot id.
    index: HashMap<String, u32>,
    inventory: Vec<CachedItemset>,
    bytes: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    /// LRU order: least-recently used first.
    entries: Vec<MineEntry>,
}

/// How a warm serve was produced, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeKind {
    /// Same snapshot, same thresholds: a plain rerun.
    Hit,
    /// Same snapshot, different thresholds: answered by filtering.
    Refine,
    /// Source delta replayed: answered by incremental re-mining.
    Delta,
}

/// A warm answer: encoded rules bit-identical to what a cold core run
/// would produce at the statement's thresholds and snapshot.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    pub rules: Vec<EncodedRule>,
    pub kind: ServeKind,
}

/// The mined-result cache. Clones share the same store (like
/// [`PreprocessCache`]); a disabled cache never hits and never retains
/// anything.
#[derive(Debug, Clone)]
pub struct MineResultCache {
    inner: Option<Arc<Mutex<CacheState>>>,
}

impl Default for MineResultCache {
    fn default() -> Self {
        MineResultCache::new()
    }
}

impl MineResultCache {
    /// An enabled, empty cache.
    pub fn new() -> MineResultCache {
        MineResultCache {
            inner: Some(Arc::new(Mutex::new(CacheState::default()))),
        }
    }

    /// A cache that never hits and never stores.
    pub fn disabled() -> MineResultCache {
        MineResultCache { inner: None }
    }

    /// Whether lookups and stores do anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of retained mined-result sets.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().unwrap().entries.len(),
            None => 0,
        }
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the cache can capture/serve this statement at all: the
    /// grouping must be replayable from raw source rows (simple class,
    /// one FROM table, no source/group condition — the fused-pass shape).
    pub fn eligible(translation: &Translation) -> bool {
        translation.class == StatementClass::Simple
            && !translation.directives.w
            && !translation.directives.g
            && translation.stmt.from.len() == 1
    }

    /// Try to answer the core-operator phase from the cache. Runs after
    /// preprocessing (cold or restored); on a hit the caller skips
    /// `read_encoded` and the core operator entirely and feeds the
    /// returned rules straight into the postprocessor. `None` means the
    /// caller must mine (and should then [`MineResultCache::store`]).
    pub fn try_serve(
        &self,
        db: &mut Database,
        translation: &Translation,
        prefix: &str,
        report: &PreprocessReport,
    ) -> Result<Option<ServeOutcome>> {
        let inner = match &self.inner {
            Some(inner) => inner,
            None => return Ok(None),
        };
        if !Self::eligible(translation) {
            return Ok(None);
        }
        let stmt = &translation.stmt;
        let versions = match source_versions(db, stmt) {
            Some(v) => v,
            None => return Ok(None),
        };
        let fingerprint = PreprocessCache::fingerprint(stmt, prefix);
        let entry = {
            let state = inner.lock().unwrap();
            match state.entries.iter().find(|e| e.fingerprint == fingerprint) {
                Some(entry) => entry.clone(),
                None => return Ok(None),
            }
        };

        let (updated, kind) = if entry.table_versions == versions {
            let new_min = min_groups_for(entry.total_groups, stmt.min_support);
            if new_min < entry.min_groups {
                return Ok(None); // loosened support: the inventory is incomplete there
            }
            let kind = if stmt.min_support == entry.capture_support
                && stmt.min_confidence == entry.capture_confidence
            {
                ServeKind::Hit
            } else {
                ServeKind::Refine
            };
            (entry, kind)
        } else {
            match apply_delta(db, entry, translation)? {
                Some(updated) => (updated, ServeKind::Delta),
                None => return Ok(None),
            }
        };

        // The SQL preprocessor must agree on the group universe; any
        // divergence (or a run that bypassed preprocessing) is a miss.
        if report.total_groups != updated.total_groups {
            return Ok(None);
        }
        let new_min = min_groups_for(updated.total_groups, stmt.min_support);
        let rules = match extract_rules(db, &updated, translation, new_min)? {
            Some(rules) => rules,
            None => return Ok(None),
        };

        // Commit: refresh thresholds/versions and touch LRU order.
        let mut committed = updated;
        committed.capture_support = stmt.min_support;
        committed.capture_confidence = stmt.min_confidence;
        if kind == ServeKind::Delta {
            committed.min_groups = new_min;
            committed.bytes = approx_entry_bytes(&committed);
        }
        let mut state = inner.lock().unwrap();
        state.entries.retain(|e| e.fingerprint != fingerprint);
        state.entries.push(committed);
        Ok(Some(ServeOutcome { rules, kind }))
    }

    /// Capture a cold mine's inventory. `large` is the simple-path
    /// large-itemset inventory the core operator just produced. A
    /// same-fingerprint entry is replaced; beyond the 8-entry capacity
    /// the least-recently-used entry is evicted. Statements the cache cannot
    /// replay (or whose value-space accounting disagrees with the SQL
    /// preprocessor — never observed, but checked) are skipped.
    pub fn store(
        &self,
        db: &mut Database,
        translation: &Translation,
        prefix: &str,
        report: &PreprocessReport,
        large: &[LargeItemset],
    ) -> StoreOutcome {
        let inner = match &self.inner {
            Some(inner) => inner.clone(),
            None => return StoreOutcome::default(),
        };
        // Skipped stores still report the retained total, so the bytes
        // gauge never zeroes out under an uncacheable statement.
        let retained = |inner: &Arc<Mutex<CacheState>>| StoreOutcome {
            evicted: 0,
            bytes: inner.lock().unwrap().entries.iter().map(|e| e.bytes).sum(),
        };
        if !Self::eligible(translation) || report.total_groups == 0 {
            return retained(&inner);
        }
        let stmt = &translation.stmt;
        let versions = match source_versions(db, stmt) {
            Some(v) => v,
            None => return retained(&inner),
        };
        let (slots, index) = match scan_source(db, stmt) {
            Some(v) => v,
            None => return retained(&inner),
        };
        if slots.len() as u64 != report.total_groups {
            return retained(&inner);
        }
        let bid_items = match read_bid_items(db, translation) {
            Some(map) => map,
            None => return retained(&inner),
        };
        let inventory = match build_inventory(large, &bid_items, &slots) {
            Some(inv) => inv,
            None => return retained(&inner),
        };
        let mut entry = MineEntry {
            fingerprint: PreprocessCache::fingerprint(stmt, prefix),
            table_versions: versions,
            min_groups: report.min_groups,
            capture_support: stmt.min_support,
            capture_confidence: stmt.min_confidence,
            total_groups: report.total_groups,
            slots,
            index,
            inventory,
            bytes: 0,
        };
        entry.bytes = approx_entry_bytes(&entry);

        let mut state = inner.lock().unwrap();
        state.entries.retain(|e| e.fingerprint != entry.fingerprint);
        state.entries.push(entry);
        let mut evicted = 0;
        while state.entries.len() > MAX_ENTRIES {
            state.entries.remove(0);
            evicted += 1;
        }
        StoreOutcome {
            evicted,
            bytes: state.entries.iter().map(|e| e.bytes).sum(),
        }
    }
}

/// A collision-free rendering of one value: type-tagged so `1`, `'1'`
/// and `1.0` never alias (floats render by bit pattern).
fn value_key(v: &Value) -> String {
    match v {
        Value::Null => "n:".into(),
        Value::Int(i) => format!("i:{i}"),
        Value::Float(f) => format!("f:{:016x}", f.to_bits()),
        Value::Str(s) => format!("s:{s}"),
        Value::Bool(b) => format!("b:{b}"),
        Value::Date(d) => format!("d:{d}"),
    }
}

/// Join multi-attribute keys with a separator no rendering contains
/// naturally (unit separator).
fn compound_key(values: &[&Value]) -> String {
    values
        .iter()
        .map(|v| value_key(v))
        .collect::<Vec<_>>()
        .join("\u{1f}")
}

/// Current `(lowercase name, version)` of every FROM table.
fn source_versions(db: &Database, stmt: &MineRuleStatement) -> Option<Vec<(String, u64)>> {
    let mut versions = Vec::with_capacity(stmt.from.len());
    for source in &stmt.from {
        let table = db.catalog().table(&source.name).ok()?;
        versions.push((source.name.to_ascii_lowercase(), table.version()));
    }
    Some(versions)
}

/// Resolve the statement's grouping and item (body-schema) columns on the
/// source table.
fn resolve_columns(db: &Database, stmt: &MineRuleStatement) -> Option<(Vec<usize>, Vec<usize>)> {
    let table = db.catalog().table(&stmt.from[0].name).ok()?;
    let schema = table.schema();
    let resolve = |names: &[String]| -> Option<Vec<usize>> {
        names.iter().map(|n| schema.resolve(None, n).ok()).collect()
    };
    Some((resolve(&stmt.group_by)?, resolve(&stmt.body.schema)?))
}

/// Key a row's grouping attributes / item attributes.
fn row_keys(row: &[Value], group_cols: &[usize], item_cols: &[usize]) -> (String, String) {
    let gvals: Vec<&Value> = group_cols.iter().map(|&i| &row[i]).collect();
    let ivals: Vec<&Value> = item_cols.iter().map(|&i| &row[i]).collect();
    (compound_key(&gvals), compound_key(&ivals))
}

/// Build the value-space group map from the raw source rows.
#[allow(clippy::type_complexity)]
fn scan_source(
    db: &Database,
    stmt: &MineRuleStatement,
) -> Option<(Vec<Option<GroupSlot>>, HashMap<String, u32>)> {
    let (group_cols, item_cols) = resolve_columns(db, stmt)?;
    let table = db.catalog().table(&stmt.from[0].name).ok()?;
    let mut slots: Vec<Option<GroupSlot>> = Vec::new();
    let mut index: HashMap<String, u32> = HashMap::new();
    for row in table.rows() {
        let (gkey, ikey) = row_keys(row, &group_cols, &item_cols);
        let slot = match index.get(&gkey) {
            Some(&s) => s,
            None => {
                let s = slots.len() as u32;
                slots.push(Some(GroupSlot {
                    key: gkey.clone(),
                    items: BTreeMap::new(),
                }));
                index.insert(gkey, s);
                s
            }
        };
        *slots[slot as usize]
            .as_mut()
            .unwrap()
            .items
            .entry(ikey)
            .or_insert(0) += 1;
    }
    Some((slots, index))
}

/// Read `Bid → item key` from the statement's `Bset` table.
fn read_bid_items(db: &mut Database, translation: &Translation) -> Option<HashMap<u32, String>> {
    let rs = db
        .query(&format!(
            "SELECT Bid, {} FROM {}",
            translation.stmt.body.schema.join(", "),
            translation.names.bset()
        ))
        .ok()?;
    let mut map = HashMap::with_capacity(rs.len());
    for row in rs.rows() {
        let bid = match &row[0] {
            Value::Int(i) if *i >= 0 => *i as u32,
            _ => return None,
        };
        let vals: Vec<&Value> = row[1..].iter().collect();
        map.insert(bid, compound_key(&vals));
    }
    Some(map)
}

/// Convert the bid-space inventory to value space and attach exact
/// gid-sets, computed by prefix intersection over the (downward-closed)
/// inventory: `gids(X) = gids(X[..k-1]) ∩ slots(X[k-1])`. Returns `None`
/// when any computed support disagrees with the miner's count (a
/// value-rendering collision — bail rather than cache wrong results).
fn build_inventory(
    large: &[LargeItemset],
    bid_items: &HashMap<u32, String>,
    slots: &[Option<GroupSlot>],
) -> Option<Vec<CachedItemset>> {
    // Inverted index: item key → sorted slot ids containing it.
    let mut item_slots: HashMap<&str, Vec<u32>> = HashMap::new();
    for (i, slot) in slots.iter().enumerate() {
        if let Some(slot) = slot {
            for item in slot.item_set() {
                item_slots.entry(item).or_default().push(i as u32);
            }
        }
    }

    let mut sets: Vec<(Vec<String>, u32)> = Vec::with_capacity(large.len());
    for (set, cnt) in large {
        let mut items: Vec<String> = set
            .iter()
            .map(|bid| bid_items.get(bid).cloned())
            .collect::<Option<_>>()?;
        items.sort();
        sets.push((items, *cnt));
    }
    sets.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));

    let mut gid_map: HashMap<Vec<String>, Vec<u32>> = HashMap::with_capacity(sets.len());
    let mut inventory = Vec::with_capacity(sets.len());
    for (items, cnt) in sets {
        let last = item_slots.get(items.last()?.as_str())?;
        let gids = if items.len() == 1 {
            last.clone()
        } else {
            intersect_sorted(gid_map.get(&items[..items.len() - 1])?, last)
        };
        if gids.len() as u32 != cnt {
            return None;
        }
        gid_map.insert(items.clone(), gids.clone());
        inventory.push(CachedItemset { items, gids });
    }
    Some(inventory)
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Replay the source-table delta onto a clone of the entry: update slot
/// multisets, patch gid-sets of cached itemsets for affected groups,
/// mine the grown/new groups for borderline candidates and verify them
/// exactly. Returns `None` whenever incremental re-mining is unsound or
/// over budget — the caller falls back to a full mine.
fn apply_delta(
    db: &Database,
    mut entry: MineEntry,
    translation: &Translation,
) -> Result<Option<MineEntry>> {
    let stmt = &translation.stmt;
    let table = match db.catalog().table(&stmt.from[0].name) {
        Ok(t) => t,
        Err(_) => return Ok(None),
    };
    let delta = match table.changes_since(entry.table_versions[0].1) {
        Some(d) => d,
        None => return Ok(None),
    };
    let cached_rows: u64 = entry.slots.iter().flatten().map(|s| s.row_count()).sum();
    let budget = (cached_rows as usize / 4).max(BUDGET_MIN_ROWS);
    if delta.row_count() > budget {
        return Ok(None);
    }
    let (group_cols, item_cols) = match resolve_columns(db, stmt) {
        Some(v) => v,
        None => return Ok(None),
    };

    // Pre-delta item sets of every slot the delta touches.
    let mut before: HashMap<u32, HashSet<String>> = HashMap::new();
    let touch = |entry: &MineEntry, slot: u32, before: &mut HashMap<u32, HashSet<String>>| {
        before.entry(slot).or_insert_with(|| {
            entry.slots[slot as usize]
                .as_ref()
                .map(|s| s.item_set().into_iter().map(str::to_string).collect())
                .unwrap_or_default()
        });
    };

    if !apply_rows(&mut entry, &delta, &group_cols, &item_cols, &mut |e, s| {
        touch(e, s, &mut before)
    }) {
        return Ok(None);
    }

    // Retire emptied groups; classify the touched slots.
    let mut grown_or_new: Vec<(u32, HashSet<String>)> = Vec::new();
    let mut changed: Vec<u32> = Vec::new();
    for (&slot, old_set) in &before {
        let now: HashSet<String> = entry.slots[slot as usize]
            .as_ref()
            .map(|s| {
                if s.row_count() == 0 {
                    HashSet::new()
                } else {
                    s.item_set().into_iter().map(str::to_string).collect()
                }
            })
            .unwrap_or_default();
        if entry.slots[slot as usize]
            .as_ref()
            .is_some_and(|s| s.row_count() == 0)
        {
            let key = entry.slots[slot as usize].as_ref().unwrap().key.clone();
            entry.index.remove(&key);
            entry.slots[slot as usize] = None;
        }
        if now == *old_set {
            continue; // duplicate-row churn only: the item set is unchanged
        }
        changed.push(slot);
        if now.iter().any(|i| !old_set.contains(i)) {
            grown_or_new.push((slot, now));
        }
    }

    let new_totg = entry.slots.iter().flatten().count() as u64;
    let new_min = min_groups_for(new_totg, stmt.min_support);
    if new_min < entry.min_groups {
        // The effective threshold loosened (mass deletes): itemsets below
        // the cached pruning line are unknown. Full mine.
        return Ok(None);
    }

    // Patch gid-sets of the cached inventory for the changed slots only.
    for cached in &mut entry.inventory {
        for &slot in &changed {
            let contains_now = entry.slots[slot as usize]
                .as_ref()
                .is_some_and(|s| cached.items.iter().all(|i| s.items.contains_key(i)));
            let pos = cached.gids.binary_search(&slot);
            match (pos, contains_now) {
                (Ok(p), false) => {
                    cached.gids.remove(p);
                }
                (Err(p), true) => cached.gids.insert(p, slot),
                _ => {}
            }
        }
    }

    // Borderline candidates: an itemset absent from the inventory had
    // support < cached min_groups, so to reach new_min it must occur in
    // at least `t` of the grown/new groups. Mine just those.
    let t = (new_min - entry.min_groups + 1) as usize;
    let delta_sets: Vec<&HashSet<String>> = grown_or_new.iter().map(|(_, s)| s).collect();
    let candidates = match mine_delta_candidates(&delta_sets, t) {
        Some(c) => c,
        None => return Ok(None), // candidate blow-up: full mine
    };
    if !candidates.is_empty() {
        let known: HashSet<Vec<String>> = entry.inventory.iter().map(|c| c.items.clone()).collect();
        // Exact verification over all live groups via an inverted index
        // restricted to candidate items.
        let mut item_slots: HashMap<&str, Vec<u32>> = HashMap::new();
        let wanted: HashSet<&str> = candidates
            .iter()
            .flat_map(|c| c.iter().map(String::as_str))
            .collect();
        for (i, slot) in entry.slots.iter().enumerate() {
            if let Some(slot) = slot {
                for item in slot.item_set() {
                    if wanted.contains(item) {
                        item_slots.entry(item).or_default().push(i as u32);
                    }
                }
            }
        }
        let mut fresh: Vec<CachedItemset> = Vec::new();
        for items in candidates {
            if known.contains(&items) {
                continue;
            }
            let mut gids: Option<Vec<u32>> = None;
            for item in &items {
                let slots = match item_slots.get(item.as_str()) {
                    Some(s) => s,
                    None => {
                        gids = Some(Vec::new());
                        break;
                    }
                };
                gids = Some(match gids {
                    None => slots.clone(),
                    Some(g) => intersect_sorted(&g, slots),
                });
                if gids.as_ref().is_some_and(Vec::is_empty) {
                    break;
                }
            }
            let gids = gids.unwrap_or_default();
            if gids.len() as u64 >= new_min {
                fresh.push(CachedItemset { items, gids });
            }
        }
        entry.inventory.extend(fresh);
    }

    // Keep exactly the frequent set at the new threshold: the inventory
    // is complete there (cached updates + verified candidates).
    entry.inventory.retain(|c| c.gids.len() as u64 >= new_min);
    entry.inventory.sort_by(|a, b| {
        a.items
            .len()
            .cmp(&b.items.len())
            .then_with(|| a.items.cmp(&b.items))
    });
    entry.total_groups = new_totg;
    entry.table_versions = match source_versions(db, stmt) {
        Some(v) => v,
        None => return Ok(None),
    };
    Ok(Some(entry))
}

/// Apply the delta rows to the entry's group map. Returns false when a
/// deleted row cannot be accounted for (the map and the table diverged —
/// never expected, but never cache through it).
fn apply_rows(
    entry: &mut MineEntry,
    delta: &TableDelta,
    group_cols: &[usize],
    item_cols: &[usize],
    touch: &mut impl FnMut(&MineEntry, u32),
) -> bool {
    let max_col = group_cols.iter().chain(item_cols).copied().max();
    for row in delta.inserted.iter().chain(&delta.deleted) {
        if max_col.is_some_and(|m| m >= row.len()) {
            return false; // schema drift
        }
    }
    for row in &delta.inserted {
        let (gkey, ikey) = row_keys(row, group_cols, item_cols);
        let slot = match entry.index.get(&gkey) {
            Some(&s) => s,
            None => {
                let s = entry.slots.len() as u32;
                entry.slots.push(Some(GroupSlot {
                    key: gkey.clone(),
                    items: BTreeMap::new(),
                }));
                entry.index.insert(gkey, s);
                s
            }
        };
        touch(entry, slot);
        *entry.slots[slot as usize]
            .as_mut()
            .unwrap()
            .items
            .entry(ikey)
            .or_insert(0) += 1;
    }
    for row in &delta.deleted {
        let (gkey, ikey) = row_keys(row, group_cols, item_cols);
        let slot = match entry.index.get(&gkey) {
            Some(&s) => s,
            None => return false,
        };
        touch(entry, slot);
        let slot_ref = entry.slots[slot as usize].as_mut().unwrap();
        match slot_ref.items.get_mut(&ikey) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    slot_ref.items.remove(&ikey);
                }
            }
            _ => return false,
        }
    }
    true
}

/// Enumerate every itemset occurring in at least `t` of the given group
/// item-sets (depth-first with tid-lists over the — small — delta).
/// Returns `None` past [`MAX_DELTA_CANDIDATES`].
fn mine_delta_candidates(groups: &[&HashSet<String>], t: usize) -> Option<Vec<Vec<String>>> {
    if groups.is_empty() || t > groups.len() {
        return Some(Vec::new());
    }
    let mut tids: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, set) in groups.iter().enumerate() {
        for item in set.iter() {
            tids.entry(item).or_default().push(i);
        }
    }
    let items: Vec<(&str, Vec<usize>)> = tids
        .into_iter()
        .filter(|(_, tids)| tids.len() >= t)
        .collect();
    let mut out: Vec<Vec<String>> = Vec::new();

    fn extend(
        items: &[(&str, Vec<usize>)],
        start: usize,
        prefix: &mut Vec<String>,
        prefix_tids: &[usize],
        t: usize,
        out: &mut Vec<Vec<String>>,
    ) -> bool {
        for (i, (item, item_tids)) in items.iter().enumerate().skip(start) {
            let tids: Vec<usize> = if prefix.is_empty() {
                item_tids.clone()
            } else {
                prefix_tids
                    .iter()
                    .copied()
                    .filter(|x| item_tids.binary_search(x).is_ok())
                    .collect()
            };
            if tids.len() < t {
                continue;
            }
            prefix.push(item.to_string());
            if out.len() >= MAX_DELTA_CANDIDATES {
                return false;
            }
            let mut emitted = prefix.clone();
            emitted.sort();
            out.push(emitted);
            if !extend(items, i + 1, prefix, &tids, t, out) {
                return false;
            }
            prefix.pop();
        }
        true
    }

    let mut prefix = Vec::new();
    if !extend(&items, 0, &mut prefix, &[], t, &mut out) {
        return None;
    }
    Some(out)
}

/// Filter the inventory at the statement's threshold, map value-space
/// items onto the current `Bset` identifiers and regenerate rules with
/// the same derivation a cold mine uses — bit-identical output. `None`
/// when an item cannot be mapped (serve as a miss instead).
fn extract_rules(
    db: &mut Database,
    entry: &MineEntry,
    translation: &Translation,
    new_min: u64,
) -> Result<Option<Vec<EncodedRule>>> {
    let stmt = &translation.stmt;
    let bid_items = match read_bid_items(db, translation) {
        Some(map) => map,
        None => return Ok(None),
    };
    let item_bids: HashMap<&str, u32> = bid_items
        .iter()
        .map(|(&bid, item)| (item.as_str(), bid))
        .collect();
    let mut large: Vec<LargeItemset> = Vec::new();
    for cached in &entry.inventory {
        if (cached.gids.len() as u64) < new_min {
            continue;
        }
        let mut set: Vec<u32> = Vec::with_capacity(cached.items.len());
        for item in &cached.items {
            match item_bids.get(item.as_str()) {
                Some(&bid) => set.push(bid),
                None => return Ok(None),
            }
        }
        set.sort_unstable();
        large.push((set, cached.gids.len() as u32));
    }
    let (mut rules, _) = rules_from_itemsets_counted(
        &large,
        entry.total_groups as u32,
        stmt.body.card,
        stmt.head.card,
        stmt.min_confidence,
    )?;
    sort_rules(&mut rules);
    Ok(Some(rules))
}

/// Rough retained size of one entry, for the bytes gauge.
fn approx_entry_bytes(entry: &MineEntry) -> u64 {
    let slot_bytes: u64 = entry
        .slots
        .iter()
        .flatten()
        .map(|s| s.key.len() as u64 + s.items.keys().map(|k| k.len() as u64 + 12).sum::<u64>() + 32)
        .sum();
    let inv_bytes: u64 = entry
        .inventory
        .iter()
        .map(|c| {
            c.items.iter().map(|i| i.len() as u64 + 8).sum::<u64>() + c.gids.len() as u64 * 4 + 32
        })
        .sum();
    slot_bytes + inv_bytes + 256
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::purchase_db;
    use crate::pipeline::MineRuleEngine;

    fn stmt_text(support: f64, confidence: f64, output: &str) -> String {
        format!(
            "MINE RULE {output} AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY tr \
             EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: {confidence}"
        )
    }

    /// Rules of a cold mine (mined-result cache off) on a freshly built
    /// database with the given extra SQL applied first.
    fn cold_reference(mutations: &[&str], text: &str) -> Vec<crate::postprocess::DecodedRule> {
        let mut db = purchase_db();
        for sql in mutations {
            db.execute(sql).unwrap();
        }
        MineRuleEngine::new()
            .with_minecache(false)
            .execute(&mut db, text)
            .unwrap()
            .rules
    }

    #[test]
    fn refined_thresholds_serve_without_core_work() {
        let engine = MineRuleEngine::new();
        let mut db = purchase_db();
        engine.execute(&mut db, &stmt_text(0.25, 0.1, "R")).unwrap();
        let before = engine.metrics_snapshot();
        let warm = engine.execute(&mut db, &stmt_text(0.5, 0.4, "R")).unwrap();
        let after = engine.metrics_snapshot();
        assert_eq!(after.counter("core.minecache.hit"), 1);
        assert_eq!(after.counter("core.minecache.refine"), 1);
        assert_eq!(after.counter("core.minecache.delta"), 0);
        // The core operator never ran on the warm serve: no new levels,
        // no new simple-path dispatch.
        assert_eq!(
            before.counter("core.level.1.generated"),
            after.counter("core.level.1.generated")
        );
        assert_eq!(
            before.counter("core.path.simple"),
            after.counter("core.path.simple")
        );
        assert_eq!(warm.rules, cold_reference(&[], &stmt_text(0.5, 0.4, "R")));
    }

    #[test]
    fn identical_rerun_is_a_plain_hit() {
        let engine = MineRuleEngine::new();
        let mut db = purchase_db();
        let cold = engine.execute(&mut db, &stmt_text(0.25, 0.1, "R")).unwrap();
        let warm = engine.execute(&mut db, &stmt_text(0.25, 0.1, "R")).unwrap();
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.counter("core.minecache.hit"), 1);
        assert_eq!(snap.counter("core.minecache.refine"), 0);
        assert_eq!(warm.rules, cold.rules);
    }

    #[test]
    fn loosened_support_misses_then_recaptures() {
        let engine = MineRuleEngine::new();
        let mut db = purchase_db();
        engine.execute(&mut db, &stmt_text(0.5, 0.4, "R")).unwrap();
        let loose = engine.execute(&mut db, &stmt_text(0.25, 0.1, "R")).unwrap();
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.counter("core.minecache.hit"), 0);
        assert_eq!(snap.counter("core.minecache.miss"), 2);
        assert_eq!(loose.rules, cold_reference(&[], &stmt_text(0.25, 0.1, "R")));
        // The loose mine replaced the entry, so tightening hits again.
        engine.execute(&mut db, &stmt_text(0.5, 0.4, "R")).unwrap();
        assert_eq!(engine.metrics_snapshot().counter("core.minecache.hit"), 1);
    }

    #[test]
    fn insert_delete_delta_is_remined_incrementally() {
        let mutations: &[&str] = &[
            "INSERT INTO Purchase VALUES \
             (90, 'c9', 'ski_pants', DATE '1997-01-08', 140, 1), \
             (90, 'c9', 'brown_boots', DATE '1997-01-08', 180, 1)",
            "DELETE FROM Purchase WHERE tr = 1 AND item = 'hiking_boots'",
        ];
        let engine = MineRuleEngine::new();
        let mut db = purchase_db();
        engine.execute(&mut db, &stmt_text(0.25, 0.1, "R")).unwrap();
        for sql in mutations {
            db.execute(sql).unwrap();
        }
        let warm = engine.execute(&mut db, &stmt_text(0.25, 0.1, "R")).unwrap();
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.counter("core.minecache.hit"), 1);
        assert_eq!(snap.counter("core.minecache.delta"), 1);
        assert_eq!(
            warm.rules,
            cold_reference(mutations, &stmt_text(0.25, 0.1, "R"))
        );
    }

    #[test]
    fn update_delta_is_remined_incrementally() {
        let engine = MineRuleEngine::new();
        let mut db = purchase_db();
        engine.execute(&mut db, &stmt_text(0.25, 0.1, "R")).unwrap();
        // UPDATE logs as a tracked delete+insert pair, so the rerun is
        // served through the incremental delta path.
        db.execute("UPDATE Purchase SET price = price + 1 WHERE tr = 1")
            .unwrap();
        let warm = engine.execute(&mut db, &stmt_text(0.25, 0.1, "R")).unwrap();
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.counter("core.minecache.hit"), 1);
        assert_eq!(snap.counter("core.minecache.delta"), 1);
        assert_eq!(snap.counter("core.minecache.miss"), 1);
        assert_eq!(
            warm.rules,
            cold_reference(
                &["UPDATE Purchase SET price = price + 1 WHERE tr = 1"],
                &stmt_text(0.25, 0.1, "R")
            )
        );
    }

    #[test]
    fn unreplayable_mutations_fall_back_to_a_full_mine() {
        let engine = MineRuleEngine::new();
        let mut db = purchase_db();
        engine.execute(&mut db, &stmt_text(0.25, 0.1, "R")).unwrap();
        // Churn past the bounded change log: the cached stamp's window
        // falls off, so the rerun must miss — and still be correct.
        let mutations = vec!["INSERT INTO Purchase (SELECT * FROM Purchase)"; 9];
        for sql in &mutations {
            db.execute(sql).unwrap();
        }
        let warm = engine.execute(&mut db, &stmt_text(0.25, 0.1, "R")).unwrap();
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.counter("core.minecache.hit"), 0);
        assert_eq!(snap.counter("core.minecache.delta"), 0);
        assert_eq!(snap.counter("core.minecache.miss"), 2);
        assert_eq!(
            warm.rules,
            cold_reference(&mutations, &stmt_text(0.25, 0.1, "R"))
        );
    }

    #[test]
    fn general_class_statements_bypass_the_cache() {
        let text = "MINE RULE C AS SELECT DISTINCT item AS BODY, item AS HEAD \
                    FROM Purchase GROUP BY customer CLUSTER BY date \
                    EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1";
        let engine = MineRuleEngine::new();
        let mut db = purchase_db();
        engine.execute(&mut db, text).unwrap();
        engine.execute(&mut db, text).unwrap();
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.counter("core.minecache.hit"), 0);
        assert_eq!(snap.counter("core.minecache.miss"), 2);
    }

    #[test]
    fn disabled_cache_never_serves_or_counts() {
        let engine = MineRuleEngine::new().with_minecache(false);
        assert!(!engine.minecache_enabled());
        let mut db = purchase_db();
        engine.execute(&mut db, &stmt_text(0.25, 0.1, "R")).unwrap();
        let warm = engine.execute(&mut db, &stmt_text(0.5, 0.4, "R")).unwrap();
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.counter("core.minecache.hit"), 0);
        assert_eq!(snap.counter("core.minecache.miss"), 0);
        assert_eq!(warm.rules, cold_reference(&[], &stmt_text(0.5, 0.4, "R")));
    }

    #[test]
    fn value_keys_never_alias_across_types() {
        assert_ne!(
            value_key(&Value::Int(1)),
            value_key(&Value::Str("1".into()))
        );
        assert_ne!(value_key(&Value::Int(1)), value_key(&Value::Float(1.0)));
        assert_ne!(
            value_key(&Value::Null),
            value_key(&Value::Str(String::new()))
        );
        assert_ne!(
            compound_key(&[&Value::Str("a\u{1f}b".into())]),
            compound_key(&[&Value::Str("a".into()), &Value::Str("b".into())])
        );
        // Still... the last two render the same joined text, which is
        // exactly why stores verify counts before trusting the map.
    }

    #[test]
    fn delta_candidate_miner_enumerates_exactly() {
        let a: HashSet<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let b: HashSet<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        let c: HashSet<String> = ["y"].iter().map(|s| s.to_string()).collect();
        let groups = [&a, &b, &c];
        let mut found = mine_delta_candidates(&groups, 2).unwrap();
        found.sort();
        let expect: Vec<Vec<String>> = vec![
            vec!["x".into()],
            vec!["x".into(), "y".into()],
            vec!["y".into()],
        ];
        assert_eq!(found, expect);
        assert!(mine_delta_candidates(&groups, 4).unwrap().is_empty());
    }
}
