//! The translator (§4.1): statement checking, classification and SQL
//! program generation.
//!
//! The translator is the only kernel component that reads the DBMS data
//! dictionary. It validates the statement (four semantic checks), derives
//! the boolean directives, and emits the SQL programs the preprocessor and
//! postprocessor will run. The core operator never sees any of this — it
//! receives only encoded tables and directives, which is what gives the
//! architecture its algorithm interoperability.

pub mod checks;
pub mod queries;

use relational::catalog::Catalog;
use relational::types::{DataType, Schema};

use crate::ast::MineRuleStatement;
use crate::directives::{Directives, StatementClass};
use crate::error::{MineError, Result};

/// One step of a generated program.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Execute a SQL statement. `id` names the paper query it belongs to
    /// (`"Q0"`, `"Q3.2"`, ...); `sql` is the statement text.
    Sql { id: String, sql: String },
    /// Compute `:mingroups = ceil(:totg * min_support)` on the session.
    /// Runs between Q1 and Q3.
    ComputeMinGroups,
}

impl Step {
    /// Convenience constructor.
    pub fn sql(id: impl Into<String>, sql: impl Into<String>) -> Step {
        Step::Sql {
            id: id.into(),
            sql: sql.into(),
        }
    }
}

/// Names of every table/view/sequence a translation touches. All names are
/// derived from a configurable prefix so concurrent mining sessions (or a
/// shared-preprocessing cache) can coexist in one catalog.
#[derive(Debug, Clone)]
pub struct TableNames {
    pub prefix: String,
}

impl TableNames {
    /// Build names under `prefix` (empty prefix = the paper's names).
    pub fn with_prefix(prefix: impl Into<String>) -> TableNames {
        TableNames {
            prefix: prefix.into(),
        }
    }

    fn n(&self, base: &str) -> String {
        format!("{}{base}", self.prefix)
    }

    pub fn source(&self) -> String {
        self.n("Source")
    }
    pub fn valid_groups_view(&self) -> String {
        self.n("ValidGroupsView")
    }
    pub fn valid_groups(&self) -> String {
        self.n("ValidGroups")
    }
    pub fn distinct_groups_in_body(&self) -> String {
        self.n("DistinctGroupsInBody")
    }
    pub fn distinct_groups_in_head(&self) -> String {
        self.n("DistinctGroupsInHead")
    }
    pub fn bset(&self) -> String {
        self.n("Bset")
    }
    pub fn hset(&self) -> String {
        self.n("Hset")
    }
    pub fn clusters(&self) -> String {
        self.n("Clusters")
    }
    pub fn cluster_couples(&self) -> String {
        self.n("ClusterCouples")
    }
    pub fn mining_source(&self) -> String {
        self.n("MiningSource")
    }
    pub fn coded_source(&self) -> String {
        self.n("CodedSource")
    }
    pub fn input_rules_raw(&self) -> String {
        self.n("InputRulesRaw")
    }
    pub fn large_rules(&self) -> String {
        self.n("LargeRules")
    }
    pub fn input_rules(&self) -> String {
        self.n("InputRules")
    }
    pub fn output_rules(&self) -> String {
        self.n("OutputRules")
    }
    pub fn output_bodies(&self) -> String {
        self.n("OutputBodies")
    }
    pub fn output_heads(&self) -> String {
        self.n("OutputHeads")
    }
    pub fn gid_sequence(&self) -> String {
        self.n("Gidsequence")
    }
    pub fn bid_sequence(&self) -> String {
        self.n("Bidsequence")
    }
    pub fn hid_sequence(&self) -> String {
        self.n("Hidsequence")
    }
    pub fn cid_sequence(&self) -> String {
        self.n("Cidsequence")
    }
}

/// The combined schema of the FROM list, with each table's columns visible
/// under its alias (or name). Used by the semantic checks and by type
/// lookups during query generation.
#[derive(Debug, Clone)]
pub struct SourceSchema {
    schema: Schema,
}

impl SourceSchema {
    /// Resolve the FROM list against the catalog.
    pub fn build(stmt: &MineRuleStatement, catalog: &Catalog) -> Result<SourceSchema> {
        let mut schema = Schema::default();
        for t in &stmt.from {
            let ts = catalog.table_schema(&t.name).map_err(MineError::from)?;
            for c in ts.with_qualifier(t.visible_name()).columns() {
                schema.push(c.clone());
            }
        }
        Ok(SourceSchema { schema })
    }

    /// True when an unqualified attribute name exists in the source.
    pub fn has_attr(&self, name: &str) -> bool {
        self.schema
            .columns()
            .iter()
            .any(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Resolve a possibly-qualified reference (errors map to check 1).
    pub fn resolves(&self, qualifier: Option<&str>, name: &str) -> bool {
        self.schema.resolve(qualifier, name).is_ok()
            // Ambiguity still means the attribute exists on the source.
            || matches!(
                self.schema.resolve(qualifier, name),
                Err(relational::Error::AmbiguousColumn { .. })
            )
    }

    /// Data type of an unqualified attribute (first match wins).
    pub fn attr_type(&self, name: &str) -> Option<DataType> {
        self.schema
            .columns()
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
            .map(|c| c.dtype)
    }

    /// The underlying combined schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

/// The complete output of translating one MINE RULE statement.
#[derive(Debug, Clone)]
pub struct Translation {
    /// The validated statement.
    pub stmt: MineRuleStatement,
    /// Classification directives.
    pub directives: Directives,
    /// Processing class (simple vs general core algorithm).
    pub class: StatementClass,
    /// Encoded-table naming.
    pub names: TableNames,
    /// Cleanup program: drops every object the translation may create.
    pub cleanup: Vec<Step>,
    /// Preprocessing program (`Q0`..`Q11`), in execution order.
    pub preprocess: Vec<Step>,
    /// Postprocessing program (decode joins), run after the core operator
    /// has stored its encoded rules.
    pub postprocess: Vec<Step>,
}

/// Translate: check the statement against the catalog, classify it, and
/// generate the pre/postprocessing SQL programs.
pub fn translate(stmt: &MineRuleStatement, catalog: &Catalog) -> Result<Translation> {
    translate_with_prefix(stmt, catalog, "")
}

/// [`translate`] with a table-name prefix for the encoded tables.
pub fn translate_with_prefix(
    stmt: &MineRuleStatement,
    catalog: &Catalog,
    prefix: &str,
) -> Result<Translation> {
    let source = SourceSchema::build(stmt, catalog)?;
    checks::check(stmt, &source)?;
    let directives = Directives::classify(stmt);
    let names = TableNames::with_prefix(prefix);
    let gen = queries::ProgramGenerator::new(stmt, &directives, &names, &source);
    let cleanup = gen.cleanup();
    let preprocess = gen.preprocess()?;
    let postprocess = gen.postprocess();
    Ok(Translation {
        stmt: stmt.clone(),
        directives,
        class: directives.class(),
        names,
        cleanup,
        preprocess,
        postprocess,
    })
}
