//! The translator's semantic checks (§4.1, items 1–4).

use relational::expr::Expr;

use crate::ast::MineRuleStatement;
use crate::directives::Directives;
use crate::error::{MineError, Result, SemanticViolation};
use crate::translator::SourceSchema;

/// Run all semantic checks; the first violation is returned.
pub fn check(stmt: &MineRuleStatement, source: &SourceSchema) -> Result<()> {
    check_output_table(stmt)?;
    check_thresholds(stmt)?;
    check_cardinalities(stmt)?;
    check_attributes_exist(stmt, source)?; // check 1
    check_disjointness(stmt)?; // check 2
    check_having_scopes(stmt)?; // check 3
    check_mining_scope(stmt)?; // check 4
    Ok(())
}

/// The run's cleanup drops `<out>` and its `_Bodies`/`_Heads` companions;
/// refusing source-table collisions keeps that cleanup from destroying
/// the data being mined.
fn check_output_table(stmt: &MineRuleStatement) -> Result<()> {
    for t in &stmt.from {
        for candidate in [
            stmt.output_table.clone(),
            format!("{}_Bodies", stmt.output_table),
            format!("{}_Heads", stmt.output_table),
        ] {
            if t.name.eq_ignore_ascii_case(&candidate) {
                return Err(SemanticViolation::OutputClobbersSource {
                    name: stmt.output_table.clone(),
                }
                .into());
            }
        }
    }
    Ok(())
}

fn check_thresholds(stmt: &MineRuleStatement) -> Result<()> {
    for (what, v) in [
        ("support", stmt.min_support),
        ("confidence", stmt.min_confidence),
    ] {
        if !(v > 0.0 && v <= 1.0) {
            return Err(MineError::BadThreshold { what, value: v });
        }
    }
    Ok(())
}

fn check_cardinalities(stmt: &MineRuleStatement) -> Result<()> {
    for spec in [&stmt.body.card, &stmt.head.card] {
        if !spec.is_valid() {
            return Err(SemanticViolation::BadCardinality {
                spec: spec.to_string(),
            }
            .into());
        }
    }
    Ok(())
}

/// Check 1: every attribute list is defined on the source table schemas.
fn check_attributes_exist(stmt: &MineRuleStatement, source: &SourceSchema) -> Result<()> {
    let lists: [(&'static str, &[String]); 4] = [
        ("body schema", &stmt.body.schema),
        ("head schema", &stmt.head.schema),
        ("group attribute list", &stmt.group_by),
        ("cluster attribute list", &stmt.cluster_by),
    ];
    for (clause, attrs) in lists {
        for a in attrs {
            if !source.has_attr(a) {
                return Err(SemanticViolation::UnknownAttribute {
                    clause,
                    name: a.clone(),
                }
                .into());
            }
        }
    }
    // Source condition references resolve against the (qualified) source.
    if let Some(cond) = &stmt.source_cond {
        for (q, name) in cond.column_refs() {
            if !source.resolves(q, name) {
                return Err(SemanticViolation::UnknownAttribute {
                    clause: "source condition",
                    name: match q {
                        Some(q) => format!("{q}.{name}"),
                        None => name.to_string(),
                    },
                }
                .into());
            }
        }
    }
    // Group / cluster / mining conditions reference bare attributes (the
    // BODY/HEAD qualifiers are handled by checks 3 and 4).
    for (clause, cond) in [
        ("group condition", &stmt.group_cond),
        ("cluster condition", &stmt.cluster_cond),
        ("mining condition", &stmt.mining_cond),
    ] {
        if let Some(cond) = cond {
            for (_, name) in cond.column_refs() {
                if !source.has_attr(name) {
                    return Err(SemanticViolation::UnknownAttribute {
                        clause,
                        name: name.to_string(),
                    }
                    .into());
                }
            }
        }
    }
    Ok(())
}

fn overlap<'a>(a: &'a [String], b: &[String]) -> Option<&'a String> {
    a.iter()
        .find(|x| b.iter().any(|y| x.eq_ignore_ascii_case(y)))
}

/// Check 2: grouping/clustering disjoint; body/head schemas disjoint from
/// grouping and clustering.
fn check_disjointness(stmt: &MineRuleStatement) -> Result<()> {
    let pairs: [(&'static str, &[String], &'static str, &[String]); 5] = [
        (
            "group attribute list",
            &stmt.group_by,
            "cluster attribute list",
            &stmt.cluster_by,
        ),
        (
            "body schema",
            &stmt.body.schema,
            "group attribute list",
            &stmt.group_by,
        ),
        (
            "body schema",
            &stmt.body.schema,
            "cluster attribute list",
            &stmt.cluster_by,
        ),
        (
            "head schema",
            &stmt.head.schema,
            "group attribute list",
            &stmt.group_by,
        ),
        (
            "head schema",
            &stmt.head.schema,
            "cluster attribute list",
            &stmt.cluster_by,
        ),
    ];
    for (first_name, first, second_name, second) in pairs {
        if let Some(name) = overlap(first, second) {
            return Err(SemanticViolation::OverlappingAttributes {
                first: first_name,
                second: second_name,
                name: name.clone(),
            }
            .into());
        }
    }
    Ok(())
}

/// Collect column references that are *not* inside an aggregate call.
fn refs_outside_aggregates(expr: &Expr) -> Vec<(Option<&str>, &str)> {
    fn rec<'a>(e: &'a Expr, out: &mut Vec<(Option<&'a str>, &'a str)>) {
        match e {
            Expr::Aggregate { .. } => {} // stop: inner refs are aggregated
            Expr::Column { qualifier, name } => {
                out.push((qualifier.as_deref(), name.as_str()));
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => rec(expr, out),
            Expr::Binary { left, right, .. } => {
                rec(left, out);
                rec(right, out);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                rec(expr, out);
                rec(low, out);
                rec(high, out);
            }
            Expr::InList { expr, list, .. } => {
                rec(expr, out);
                for x in list {
                    rec(x, out);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                rec(expr, out);
                rec(pattern, out);
            }
            Expr::Func { args, .. } => {
                for a in args {
                    rec(a, out);
                }
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    rec(c, out);
                    rec(v, out);
                }
                if let Some(x) = else_expr {
                    rec(x, out);
                }
            }
            Expr::InSubquery { expr, .. } => rec(expr, out),
            _ => {}
        }
    }
    let mut out = Vec::new();
    rec(expr, &mut out);
    out
}

fn in_list(name: &str, list: &[String]) -> bool {
    list.iter().any(|x| x.eq_ignore_ascii_case(name))
}

/// Check 3: the grouping (clustering) HAVING can refer only to grouping
/// (clustering) attributes outside aggregates. In the cluster condition,
/// references are qualified `BODY.attr` / `HEAD.attr` — the qualifier must
/// be one of those two role names.
fn check_having_scopes(stmt: &MineRuleStatement) -> Result<()> {
    if let Some(cond) = &stmt.group_cond {
        for (q, name) in refs_outside_aggregates(cond) {
            if q.is_some() || !in_list(name, &stmt.group_by) {
                return Err(SemanticViolation::HavingScope {
                    clause: "GROUP BY",
                    name: name.to_string(),
                }
                .into());
            }
        }
    }
    if stmt.cluster_cond.is_some() && stmt.cluster_by.is_empty() {
        return Err(SemanticViolation::ClusterCondWithoutCluster.into());
    }
    if let Some(cond) = &stmt.cluster_cond {
        for (q, name) in refs_outside_aggregates(cond) {
            match q {
                Some(q) if q.eq_ignore_ascii_case("BODY") || q.eq_ignore_ascii_case("HEAD") => {}
                Some(q) => {
                    return Err(SemanticViolation::BadClusterQualifier {
                        qualifier: q.to_string(),
                    }
                    .into())
                }
                None => {}
            }
            if !in_list(name, &stmt.cluster_by) {
                return Err(SemanticViolation::HavingScope {
                    clause: "CLUSTER BY",
                    name: name.to_string(),
                }
                .into());
            }
        }
        // Aggregate arguments inside the cluster condition must be
        // BODY/HEAD-qualified so Q6/Q7 know which side to aggregate.
        let mut bad: Option<String> = None;
        cond.walk(&mut |e| {
            if let Expr::Aggregate { arg: Some(a), .. } = e {
                for (q, _) in a.column_refs() {
                    match q {
                        Some(q)
                            if q.eq_ignore_ascii_case("BODY") || q.eq_ignore_ascii_case("HEAD") => {
                        }
                        Some(q) => bad = Some(q.to_string()),
                        None => bad = Some(String::new()),
                    }
                }
            }
        });
        if let Some(q) = bad {
            return Err(SemanticViolation::BadClusterQualifier { qualifier: q }.into());
        }
    }
    Ok(())
}

/// Check 4: the mining condition can refer to every attribute *except*
/// grouping and clustering ones, and its qualifiers must be BODY or HEAD.
fn check_mining_scope(stmt: &MineRuleStatement) -> Result<()> {
    if let Some(cond) = &stmt.mining_cond {
        for (q, name) in cond.column_refs() {
            match q {
                Some(q) if q.eq_ignore_ascii_case("BODY") || q.eq_ignore_ascii_case("HEAD") => {}
                Some(q) => {
                    return Err(SemanticViolation::BadMiningQualifier {
                        qualifier: q.to_string(),
                    }
                    .into())
                }
                None => {}
            }
            if in_list(name, &stmt.group_by) || in_list(name, &stmt.cluster_by) {
                return Err(SemanticViolation::MiningCondScope {
                    name: name.to_string(),
                }
                .into());
            }
        }
    }
    Ok(())
}

/// Convenience used by tests: directives of a statement that passed checks.
pub fn classify_checked(stmt: &MineRuleStatement, source: &SourceSchema) -> Result<Directives> {
    check(stmt, source)?;
    Ok(Directives::classify(stmt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_mine_rule;
    use relational::Database;

    fn catalog_db() -> Database {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE Purchase (tr INT, customer VARCHAR, item VARCHAR, \
             date DATE, price INT, qty INT)",
        )
        .unwrap();
        db
    }

    fn check_text(text: &str) -> Result<()> {
        let db = catalog_db();
        let stmt = parse_mine_rule(text).unwrap();
        let source = SourceSchema::build(&stmt, db.catalog())?;
        check(&stmt, &source)
    }

    #[test]
    fn paper_statement_passes() {
        check_text(
            "MINE RULE F AS SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD \
             WHERE BODY.price >= 100 AND HEAD.price < 100 \
             FROM Purchase WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' \
             GROUP BY customer CLUSTER BY date HAVING BODY.date < HEAD.date \
             EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3",
        )
        .unwrap();
    }

    #[test]
    fn check1_unknown_attribute() {
        let err = check_text(
            "MINE RULE R AS SELECT DISTINCT nosuch AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MineError::Semantic(SemanticViolation::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn check2_body_overlaps_grouping() {
        let err = check_text(
            "MINE RULE R AS SELECT DISTINCT customer AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MineError::Semantic(SemanticViolation::OverlappingAttributes { .. })
        ));
    }

    #[test]
    fn check2_group_overlaps_cluster() {
        let err = check_text(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer CLUSTER BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MineError::Semantic(SemanticViolation::OverlappingAttributes { .. })
        ));
    }

    #[test]
    fn check3_group_having_scope() {
        let err = check_text(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer HAVING price > 10 \
             EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MineError::Semantic(SemanticViolation::HavingScope { .. })
        ));
    }

    #[test]
    fn check3_group_having_aggregate_allowed() {
        check_text(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer HAVING COUNT(price) > 1 \
             EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        )
        .unwrap();
    }

    #[test]
    fn check4_mining_cond_cannot_touch_grouping() {
        let err = check_text(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             WHERE BODY.customer = 'c1' \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MineError::Semantic(SemanticViolation::MiningCondScope { .. })
        ));
    }

    #[test]
    fn mining_qualifier_must_be_body_or_head() {
        let err = check_text(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             WHERE X.price > 10 \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MineError::Semantic(SemanticViolation::BadMiningQualifier { .. })
        ));
    }

    #[test]
    fn thresholds_must_be_in_unit_interval() {
        let err = check_text(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 1.5, CONFIDENCE: 0.2",
        )
        .unwrap_err();
        assert!(matches!(err, MineError::BadThreshold { .. }));
    }

    #[test]
    fn bad_cardinality_rejected() {
        let err = check_text(
            "MINE RULE R AS SELECT DISTINCT 3..2 item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MineError::Semantic(SemanticViolation::BadCardinality { .. })
        ));
    }
}
