//! Generation of the preprocessing (`Q0`..`Q11`) and postprocessing SQL
//! programs (Appendix A of the paper, extended to the general case of
//! §4.2.2).
//!
//! Differences from the paper's literal text, chosen for a self-contained
//! reproduction and documented in DESIGN.md:
//!
//! * encoded tables are created with `CREATE TABLE <name> AS (SELECT ...)`
//!   instead of a separate DDL + `INSERT INTO <name> (SELECT ...)` pair
//!   (except `MiningSource`, which needs two inserts when H is true);
//! * the large-element filter is `COUNT(*) >= :mingroups` with
//!   `:mingroups = ceil(:totg * min_support)` — the exact integer form of
//!   "support ≥ threshold";
//! * the output tables also materialise immediately (the postprocessor
//!   runs plain joins against `Bset`/`Hset`, as in the appendix).

use relational::expr::Expr;
use relational::types::DataType;

use crate::ast::MineRuleStatement;
use crate::directives::Directives;
use crate::error::{MineError, Result};
use crate::translator::{SourceSchema, Step, TableNames};

/// Generates the SQL programs for one translated statement.
pub struct ProgramGenerator<'a> {
    stmt: &'a MineRuleStatement,
    dir: &'a Directives,
    names: &'a TableNames,
    source: &'a SourceSchema,
}

impl<'a> ProgramGenerator<'a> {
    pub fn new(
        stmt: &'a MineRuleStatement,
        dir: &'a Directives,
        names: &'a TableNames,
        source: &'a SourceSchema,
    ) -> ProgramGenerator<'a> {
        ProgramGenerator {
            stmt,
            dir,
            names,
            source,
        }
    }

    /// The name later queries read the source rows from: the materialised
    /// `Source` if `Q0` runs (W true), otherwise the single base table.
    fn src(&self) -> String {
        if self.dir.w {
            self.names.source()
        } else {
            self.stmt.from[0].name.clone()
        }
    }

    /// Drop every object this translation may create (old runs included).
    pub fn cleanup(&self) -> Vec<Step> {
        let n = self.names;
        let mut steps = Vec::new();
        let out = &self.stmt.output_table;
        for view in [n.valid_groups_view(), n.coded_source()] {
            steps.push(Step::sql("cleanup", format!("DROP VIEW IF EXISTS {view}")));
        }
        for table in [
            n.source(),
            n.valid_groups(),
            n.distinct_groups_in_body(),
            n.bset(),
            n.distinct_groups_in_head(),
            n.hset(),
            n.clusters(),
            n.cluster_couples(),
            n.mining_source(),
            n.coded_source(),
            n.input_rules_raw(),
            n.large_rules(),
            n.input_rules(),
            n.output_rules(),
            n.output_bodies(),
            n.output_heads(),
            out.clone(),
            format!("{out}_Bodies"),
            format!("{out}_Heads"),
        ] {
            steps.push(Step::sql(
                "cleanup",
                format!("DROP TABLE IF EXISTS {table}"),
            ));
        }
        for seq in [
            n.gid_sequence(),
            n.bid_sequence(),
            n.hid_sequence(),
            n.cid_sequence(),
        ] {
            steps.push(Step::sql(
                "cleanup",
                format!("DROP SEQUENCE IF EXISTS {seq}"),
            ));
        }
        steps
    }

    /// The preprocessing program: Figure 4a for simple statements, plus
    /// Figure 4b's additions for general ones.
    pub fn preprocess(&self) -> Result<Vec<Step>> {
        let n = self.names;
        let stmt = self.stmt;
        let dir = self.dir;
        let src = self.src();
        let g_list = stmt.group_by.join(", ");
        let b_list = stmt.body.schema.join(", ");

        let mut steps = Vec::new();

        // Sequences used by the encodings.
        steps.push(Step::sql(
            "DDL",
            format!("CREATE SEQUENCE {}", n.gid_sequence()),
        ));
        steps.push(Step::sql(
            "DDL",
            format!("CREATE SEQUENCE {}", n.bid_sequence()),
        ));
        if dir.h {
            steps.push(Step::sql(
                "DDL",
                format!("CREATE SEQUENCE {}", n.hid_sequence()),
            ));
        }
        if dir.c {
            steps.push(Step::sql(
                "DDL",
                format!("CREATE SEQUENCE {}", n.cid_sequence()),
            ));
        }

        // Q0: materialise the source query (only when W).
        if dir.w {
            let needed = stmt.needed_attributes().join(", ");
            let mut from = String::new();
            for (i, t) in stmt.from.iter().enumerate() {
                if i > 0 {
                    from.push_str(", ");
                }
                from.push_str(&t.name);
                if let Some(a) = &t.alias {
                    from.push_str(&format!(" AS {a}"));
                }
            }
            let where_clause = match &stmt.source_cond {
                Some(c) => format!(" WHERE {c}"),
                None => String::new(),
            };
            steps.push(Step::sql(
                "Q0",
                format!(
                    "CREATE TABLE {} AS (SELECT {needed} FROM {from}{where_clause})",
                    n.source()
                ),
            ));
        }

        // Q1: total number of groups, into :totg.
        steps.push(Step::sql(
            "Q1",
            format!("SELECT COUNT(*) INTO :totg FROM (SELECT DISTINCT {g_list} FROM {src}) TG"),
        ));
        steps.push(Step::ComputeMinGroups);

        // Q2: valid groups (HAVING applied when G) and group encoding.
        let group_having = match &stmt.group_cond {
            Some(c) => format!(" HAVING {c}"),
            None => String::new(),
        };
        steps.push(Step::sql(
            "Q2",
            format!(
                "CREATE VIEW {} AS (SELECT {g_list} FROM {src} GROUP BY {g_list}{group_having})",
                n.valid_groups_view()
            ),
        ));
        steps.push(Step::sql(
            "Q2",
            format!(
                "CREATE TABLE {} AS (SELECT {}.NEXTVAL AS Gid, V.* FROM {} AS V)",
                n.valid_groups(),
                n.gid_sequence(),
                n.valid_groups_view()
            ),
        ));

        // Q3: body item encoding with the large-element filter.
        steps.push(Step::sql(
            "Q3",
            format!(
                "CREATE TABLE {} AS (SELECT DISTINCT {b_list}, {g_list} FROM {src})",
                n.distinct_groups_in_body()
            ),
        ));
        steps.push(Step::sql(
            "Q3",
            format!(
                "CREATE TABLE {} AS (SELECT {}.NEXTVAL AS Bid, {b_list}, COUNT(*) AS ngroups \
                 FROM {} GROUP BY {b_list} HAVING COUNT(*) >= :mingroups)",
                n.bset(),
                n.bid_sequence(),
                n.distinct_groups_in_body()
            ),
        ));

        if dir.class() == crate::directives::StatementClass::Simple {
            // Q4: the simple CodedSource.
            steps.push(Step::sql(
                "Q4",
                format!(
                    "CREATE TABLE {} AS (SELECT DISTINCT V.Gid, B.Bid \
                     FROM {src} S, {} AS V, {} B WHERE {} AND {})",
                    n.coded_source(),
                    n.valid_groups(),
                    n.bset(),
                    eq_join("S", "V", &stmt.group_by),
                    eq_join("S", "B", &stmt.body.schema),
                ),
            ));
            return Ok(steps);
        }

        // ---- General statements (Figure 4b) ----

        // Q5: head item encoding when the head schema differs.
        if dir.h {
            let h_list = stmt.head.schema.join(", ");
            steps.push(Step::sql(
                "Q5",
                format!(
                    "CREATE TABLE {} AS (SELECT DISTINCT {h_list}, {g_list} FROM {src})",
                    n.distinct_groups_in_head()
                ),
            ));
            steps.push(Step::sql(
                "Q5",
                format!(
                    "CREATE TABLE {} AS (SELECT {}.NEXTVAL AS Hid, {h_list}, COUNT(*) AS ngroups \
                     FROM {} GROUP BY {h_list} HAVING COUNT(*) >= :mingroups)",
                    n.hset(),
                    n.hid_sequence(),
                    n.distinct_groups_in_head()
                ),
            ));
        }

        // Q6: cluster encoding (plus per-cluster aggregates when F).
        let cluster_aggs = self.cluster_aggregates();
        if dir.c {
            let cl_list = stmt.cluster_by.join(", ");
            let mut inner_proj = format!("{g_list}, {cl_list}");
            for (i, agg) in cluster_aggs.iter().enumerate() {
                inner_proj.push_str(&format!(", {agg} AS aggval{i}"));
            }
            let mut outer_proj = format!(
                "{}.NEXTVAL AS Cid, V.Gid, {}",
                n.cid_sequence(),
                qualify("X", &stmt.cluster_by)
            );
            for i in 0..cluster_aggs.len() {
                outer_proj.push_str(&format!(", X.aggval{i}"));
            }
            steps.push(Step::sql(
                "Q6",
                format!(
                    "CREATE TABLE {} AS (SELECT {outer_proj} \
                     FROM (SELECT {inner_proj} FROM {src} GROUP BY {g_list}, {cl_list}) X, {} AS V \
                     WHERE {})",
                    n.clusters(),
                    n.valid_groups(),
                    eq_join("X", "V", &stmt.group_by),
                ),
            ));
        }

        // Q7: valid cluster pairs (when the cluster condition is present).
        if dir.k {
            let cond = self.rewrite_cluster_cond(&cluster_aggs)?;
            steps.push(Step::sql(
                "Q7",
                format!(
                    "CREATE TABLE {} AS (SELECT DISTINCT C1.Gid AS Gid, C1.Cid AS Cidb, C2.Cid AS Cidh \
                     FROM {} C1, {} C2 WHERE C1.Gid = C2.Gid AND {cond})",
                    n.cluster_couples(),
                    n.clusters(),
                    n.clusters(),
                ),
            ));
        }

        // Q4b: MiningSource — the per-tuple encoding.
        let mine_attrs = stmt.mining_attributes();
        let mut columns = vec![("Gid".to_string(), DataType::Int)];
        if dir.c {
            columns.push(("Cid".to_string(), DataType::Int));
        }
        columns.push(("Bid".to_string(), DataType::Int));
        if dir.h {
            columns.push(("Hid".to_string(), DataType::Int));
        }
        for a in &mine_attrs {
            let t = self
                .source
                .attr_type(a)
                .ok_or_else(|| MineError::Internal {
                    message: format!("mining attribute '{a}' lost its type"),
                })?;
            columns.push((a.clone(), t));
        }
        let ddl_cols = columns
            .iter()
            .map(|(c, t)| format!("{c} {t}"))
            .collect::<Vec<_>>()
            .join(", ");
        steps.push(Step::sql(
            "Q4b",
            format!("CREATE TABLE {} ({ddl_cols})", n.mining_source()),
        ));

        // Shared FROM/WHERE pieces for the MiningSource inserts.
        let cluster_factor = if dir.c {
            format!(", {} C", n.clusters())
        } else {
            String::new()
        };
        let cluster_join = if dir.c {
            format!(
                " AND C.Gid = V.Gid AND {}",
                eq_join("S", "C", &stmt.cluster_by)
            )
        } else {
            String::new()
        };
        let ma_proj: String = mine_attrs.iter().map(|a| format!(", S.{a}")).collect();

        if dir.h {
            // Body-side rows (Hid NULL) and head-side rows (Bid NULL).
            steps.push(Step::sql(
                "Q4b",
                format!(
                    "INSERT INTO {} (SELECT DISTINCT V.Gid{}, B.Bid, NULL{ma_proj} \
                     FROM {src} S, {} AS V{cluster_factor}, {} B \
                     WHERE {}{cluster_join} AND {})",
                    n.mining_source(),
                    if dir.c { ", C.Cid" } else { "" },
                    n.valid_groups(),
                    n.bset(),
                    eq_join("S", "V", &stmt.group_by),
                    eq_join("S", "B", &stmt.body.schema),
                ),
            ));
            steps.push(Step::sql(
                "Q4b",
                format!(
                    "INSERT INTO {} (SELECT DISTINCT V.Gid{}, NULL, H.Hid{ma_proj} \
                     FROM {src} S, {} AS V{cluster_factor}, {} H \
                     WHERE {}{cluster_join} AND {})",
                    n.mining_source(),
                    if dir.c { ", C.Cid" } else { "" },
                    n.valid_groups(),
                    n.hset(),
                    eq_join("S", "V", &stmt.group_by),
                    eq_join("S", "H", &stmt.head.schema),
                ),
            ));
        } else {
            steps.push(Step::sql(
                "Q4b",
                format!(
                    "INSERT INTO {} (SELECT DISTINCT V.Gid{}, B.Bid{ma_proj} \
                     FROM {src} S, {} AS V{cluster_factor}, {} B \
                     WHERE {}{cluster_join} AND {})",
                    n.mining_source(),
                    if dir.c { ", C.Cid" } else { "" },
                    n.valid_groups(),
                    n.bset(),
                    eq_join("S", "V", &stmt.group_by),
                    eq_join("S", "B", &stmt.body.schema),
                ),
            ));
        }

        // Q11: CodedSource as a non-materialised view of MiningSource.
        let mut coded_cols = vec!["Gid"];
        if dir.c {
            coded_cols.push("Cid");
        }
        coded_cols.push("Bid");
        if dir.h {
            coded_cols.push("Hid");
        }
        steps.push(Step::sql(
            "Q11",
            format!(
                "CREATE VIEW {} AS (SELECT DISTINCT {} FROM {})",
                n.coded_source(),
                coded_cols.join(", "),
                n.mining_source()
            ),
        ));

        // Q8/Q9/Q10: elementary rules, evaluated in SQL when the mining
        // condition is present.
        if dir.m {
            let mining = self.rewrite_mining_cond()?;
            let mut proj = String::from("MB.Gid AS Gid");
            if dir.c {
                proj.push_str(", MB.Cid AS Cidb, MH.Cid AS Cidh");
            }
            proj.push_str(", MB.Bid AS Bid");
            proj.push_str(if dir.h {
                ", MH.Hid AS Hid"
            } else {
                ", MH.Bid AS Hid"
            });
            let couples_factor = if dir.k {
                format!(", {} CC", n.cluster_couples())
            } else {
                String::new()
            };
            let mut cond = String::from("MB.Gid = MH.Gid");
            if dir.k {
                cond.push_str(" AND CC.Gid = MB.Gid AND CC.Cidb = MB.Cid AND CC.Cidh = MH.Cid");
            }
            if dir.h {
                cond.push_str(" AND MB.Bid IS NOT NULL AND MH.Hid IS NOT NULL");
            } else {
                cond.push_str(" AND MB.Bid <> MH.Bid");
            }
            cond.push_str(&format!(" AND ({mining})"));
            steps.push(Step::sql(
                "Q8",
                format!(
                    "CREATE TABLE {} AS (SELECT DISTINCT {proj} FROM {} MB, {} MH{couples_factor} WHERE {cond})",
                    n.input_rules_raw(),
                    n.mining_source(),
                    n.mining_source(),
                ),
            ));
            steps.push(Step::sql(
                "Q9",
                format!(
                    "CREATE TABLE {} AS (SELECT Bid, Hid, COUNT(DISTINCT Gid) AS cnt \
                     FROM {} GROUP BY Bid, Hid HAVING COUNT(DISTINCT Gid) >= :mingroups)",
                    n.large_rules(),
                    n.input_rules_raw(),
                ),
            ));
            steps.push(Step::sql(
                "Q10",
                format!(
                    "CREATE TABLE {} AS (SELECT R.* FROM {} R, {} L \
                     WHERE R.Bid = L.Bid AND R.Hid = L.Hid)",
                    n.input_rules(),
                    n.input_rules_raw(),
                    n.large_rules(),
                ),
            ));
        }

        Ok(steps)
    }

    /// The postprocessing program: decode the core operator's outputs into
    /// the user-readable tables (§4.4 and the appendix's final query).
    pub fn postprocess(&self) -> Vec<Step> {
        let n = self.names;
        let out = &self.stmt.output_table;
        let mut proj = String::from("BodyId, HeadId");
        if self.stmt.select_support {
            proj.push_str(", SUPPORT");
        }
        if self.stmt.select_confidence {
            proj.push_str(", CONFIDENCE");
        }
        let mut steps = vec![Step::sql(
            "P1",
            format!(
                "CREATE TABLE {out} AS (SELECT {proj} FROM {})",
                n.output_rules()
            ),
        )];
        let b_list = self.stmt.body.schema.join(", ");
        steps.push(Step::sql(
            "P2",
            format!(
                "CREATE TABLE {out}_Bodies AS (SELECT BodyId, {b_list} \
                 FROM {}, {} WHERE {}.Bid = {}.Bid)",
                n.output_bodies(),
                n.bset(),
                n.output_bodies(),
                n.bset(),
            ),
        ));
        if self.dir.h {
            let h_list = self.stmt.head.schema.join(", ");
            steps.push(Step::sql(
                "P3",
                format!(
                    "CREATE TABLE {out}_Heads AS (SELECT HeadId, {h_list} \
                     FROM {}, {} WHERE {}.Hid = {}.Hid)",
                    n.output_heads(),
                    n.hset(),
                    n.output_heads(),
                    n.hset(),
                ),
            ));
        } else {
            let h_list = self.stmt.head.schema.join(", ");
            steps.push(Step::sql(
                "P3",
                format!(
                    "CREATE TABLE {out}_Heads AS (SELECT HeadId, {h_list} \
                     FROM {}, {} WHERE {}.Hid = {}.Bid)",
                    n.output_heads(),
                    n.bset(),
                    n.output_heads(),
                    n.bset(),
                ),
            ));
        }
        steps
    }

    /// The distinct per-cluster aggregates appearing in the cluster
    /// condition, with BODY/HEAD qualifiers stripped (each is computed
    /// once per cluster by `Q6`). Rendered as SQL text for embedding.
    fn cluster_aggregates(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        if let Some(cond) = &self.stmt.cluster_cond {
            cond.walk(&mut |e| {
                if let Expr::Aggregate { .. } = e {
                    let stripped = strip_role_qualifiers(e);
                    let sql = stripped.to_sql();
                    if !out.contains(&sql) {
                        out.push(sql);
                    }
                }
            });
        }
        out
    }

    /// Rewrite the cluster condition for `Q7`: `BODY.x` → `C1.x`,
    /// `HEAD.x` → `C2.x`, and each aggregate to its precomputed
    /// `aggval<i>` column on the proper side.
    fn rewrite_cluster_cond(&self, aggs: &[String]) -> Result<String> {
        let cond = self
            .stmt
            .cluster_cond
            .as_ref()
            .ok_or_else(|| MineError::Internal {
                message: "rewrite_cluster_cond without cluster condition".into(),
            })?;
        let rewritten = rewrite_roles(cond, "C1", "C2", aggs)?;
        Ok(rewritten.to_sql())
    }

    /// Rewrite the mining condition for `Q8`: `BODY.x` → `MB.x`,
    /// `HEAD.x` → `MH.x` (no aggregates are allowed here). Unqualified
    /// references default to the BODY side, so they stay unambiguous in
    /// the self-join and match the reference semantics.
    fn rewrite_mining_cond(&self) -> Result<String> {
        let cond = self
            .stmt
            .mining_cond
            .as_ref()
            .ok_or_else(|| MineError::Internal {
                message: "rewrite_mining_cond without mining condition".into(),
            })?;
        let qualified = cond.map_qualifiers(&mut |q, n| match q {
            None => (Some("BODY".to_string()), n.to_string()),
            Some(q) => (Some(q.to_string()), n.to_string()),
        });
        let rewritten = rewrite_roles(&qualified, "MB", "MH", &[])?;
        Ok(rewritten.to_sql())
    }
}

/// `S.a = V.a AND S.b = V.b` over an attribute list.
fn eq_join(left: &str, right: &str, attrs: &[String]) -> String {
    attrs
        .iter()
        .map(|a| format!("{left}.{a} = {right}.{a}"))
        .collect::<Vec<_>>()
        .join(" AND ")
}

/// `X.a, X.b` over an attribute list.
fn qualify(alias: &str, attrs: &[String]) -> String {
    attrs
        .iter()
        .map(|a| format!("{alias}.{a}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Remove BODY/HEAD qualifiers from every column reference.
fn strip_role_qualifiers(expr: &Expr) -> Expr {
    expr.map_qualifiers(&mut |q, n| match q {
        Some(q) if q.eq_ignore_ascii_case("BODY") || q.eq_ignore_ascii_case("HEAD") => {
            (None, n.to_string())
        }
        other => (other.map(str::to_string), n.to_string()),
    })
}

/// Rewrite BODY/HEAD role qualifiers to concrete aliases and replace
/// aggregates with their precomputed `aggval<i>` columns.
fn rewrite_roles(expr: &Expr, body_alias: &str, head_alias: &str, aggs: &[String]) -> Result<Expr> {
    // First handle aggregates (they carry the role on their arguments).
    let expr = replace_aggregates(expr, body_alias, head_alias, aggs)?;
    Ok(expr.map_qualifiers(&mut |q, n| match q {
        Some(q) if q.eq_ignore_ascii_case("BODY") => (Some(body_alias.to_string()), n.to_string()),
        Some(q) if q.eq_ignore_ascii_case("HEAD") => (Some(head_alias.to_string()), n.to_string()),
        other => (other.map(str::to_string), n.to_string()),
    }))
}

fn replace_aggregates(
    expr: &Expr,
    body_alias: &str,
    head_alias: &str,
    aggs: &[String],
) -> Result<Expr> {
    Ok(match expr {
        Expr::Aggregate { arg, .. } => {
            // Which side does this aggregate belong to?
            let mut side: Option<&str> = None;
            if let Some(a) = arg {
                for (q, _) in a.column_refs() {
                    match q {
                        Some(q) if q.eq_ignore_ascii_case("BODY") => side = Some(body_alias),
                        Some(q) if q.eq_ignore_ascii_case("HEAD") => side = Some(head_alias),
                        _ => {}
                    }
                }
            }
            let side = side.ok_or_else(|| MineError::Internal {
                message: "cluster-condition aggregate without BODY/HEAD role".into(),
            })?;
            let stripped = strip_role_qualifiers(expr).to_sql();
            let idx =
                aggs.iter()
                    .position(|a| *a == stripped)
                    .ok_or_else(|| MineError::Internal {
                        message: format!("aggregate '{stripped}' missing from Q6 registration"),
                    })?;
            Expr::qcol(side, format!("aggval{idx}"))
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(replace_aggregates(expr, body_alias, head_alias, aggs)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(replace_aggregates(left, body_alias, head_alias, aggs)?),
            op: *op,
            right: Box::new(replace_aggregates(right, body_alias, head_alias, aggs)?),
        },
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => Expr::Between {
            expr: Box::new(replace_aggregates(expr, body_alias, head_alias, aggs)?),
            negated: *negated,
            low: Box::new(replace_aggregates(low, body_alias, head_alias, aggs)?),
            high: Box::new(replace_aggregates(high, body_alias, head_alias, aggs)?),
        },
        Expr::InList {
            expr,
            negated,
            list,
        } => Expr::InList {
            expr: Box::new(replace_aggregates(expr, body_alias, head_alias, aggs)?),
            negated: *negated,
            list: list
                .iter()
                .map(|e| replace_aggregates(e, body_alias, head_alias, aggs))
                .collect::<Result<_>>()?,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(replace_aggregates(expr, body_alias, head_alias, aggs)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            negated,
            pattern,
        } => Expr::Like {
            expr: Box::new(replace_aggregates(expr, body_alias, head_alias, aggs)?),
            negated: *negated,
            pattern: Box::new(replace_aggregates(pattern, body_alias, head_alias, aggs)?),
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args
                .iter()
                .map(|e| replace_aggregates(e, body_alias, head_alias, aggs))
                .collect::<Result<_>>()?,
        },
        Expr::Case {
            branches,
            else_expr,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| {
                    Ok((
                        replace_aggregates(c, body_alias, head_alias, aggs)?,
                        replace_aggregates(v, body_alias, head_alias, aggs)?,
                    ))
                })
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(replace_aggregates(
                    e, body_alias, head_alias, aggs,
                )?)),
                None => None,
            },
        },
        other => other.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_mine_rule;
    use crate::translator::translate;
    use relational::Database;

    fn purchase_db() -> Database {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE Purchase (tr INT, customer VARCHAR, item VARCHAR, \
             date DATE, price INT, qty INT)",
        )
        .unwrap();
        db
    }

    fn steps_sql(steps: &[Step]) -> Vec<(String, String)> {
        steps
            .iter()
            .filter_map(|s| match s {
                Step::Sql { id, sql } => Some((id.clone(), sql.clone())),
                Step::ComputeMinGroups => None,
            })
            .collect()
    }

    const SIMPLE: &str = "MINE RULE SimpleAssociations AS \
        SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE \
        FROM Purchase GROUP BY customer \
        EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5";

    #[test]
    fn simple_program_has_q1_to_q4_and_no_more() {
        let db = purchase_db();
        let t = translate(&parse_mine_rule(SIMPLE).unwrap(), db.catalog()).unwrap();
        let ids: Vec<&str> = t
            .preprocess
            .iter()
            .filter_map(|s| match s {
                Step::Sql { id, .. } => Some(id.as_str()),
                _ => None,
            })
            .collect();
        assert!(
            ids.contains(&"Q1")
                && ids.contains(&"Q2")
                && ids.contains(&"Q3")
                && ids.contains(&"Q4")
        );
        assert!(!ids.contains(&"Q0"), "W false: no Source materialisation");
        assert!(!ids.iter().any(|i| ["Q5", "Q6", "Q7", "Q8"].contains(i)));
    }

    #[test]
    fn simple_q4_matches_appendix_structure() {
        let db = purchase_db();
        let t = translate(&parse_mine_rule(SIMPLE).unwrap(), db.catalog()).unwrap();
        let q4 = steps_sql(&t.preprocess)
            .into_iter()
            .find(|(id, _)| id == "Q4")
            .unwrap()
            .1;
        assert_eq!(
            q4,
            "CREATE TABLE CodedSource AS (SELECT DISTINCT V.Gid, B.Bid \
             FROM Purchase S, ValidGroups AS V, Bset B \
             WHERE S.customer = V.customer AND S.item = B.item)"
        );
    }

    #[test]
    fn paper_statement_generates_general_program() {
        let db = purchase_db();
        let stmt = parse_mine_rule(
            "MINE RULE F AS SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD \
             WHERE BODY.price >= 100 AND HEAD.price < 100 \
             FROM Purchase WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' \
             GROUP BY customer CLUSTER BY date HAVING BODY.date < HEAD.date \
             EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3",
        )
        .unwrap();
        let t = translate(&stmt, db.catalog()).unwrap();
        let ids: Vec<String> = steps_sql(&t.preprocess)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        for q in [
            "Q0", "Q1", "Q2", "Q3", "Q6", "Q7", "Q4b", "Q11", "Q8", "Q9", "Q10",
        ] {
            assert!(ids.iter().any(|i| i == q), "missing {q} in {ids:?}");
        }
        assert!(!ids.iter().any(|i| i == "Q5"), "H false: no Hset");
        assert!(!ids.iter().any(|i| i == "Q4"), "general: no simple Q4");
    }

    #[test]
    fn q7_rewrites_cluster_condition() {
        let db = purchase_db();
        let stmt = parse_mine_rule(
            "MINE RULE F AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             CLUSTER BY date HAVING BODY.date < HEAD.date \
             EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3",
        )
        .unwrap();
        let t = translate(&stmt, db.catalog()).unwrap();
        let q7 = steps_sql(&t.preprocess)
            .into_iter()
            .find(|(id, _)| id == "Q7")
            .unwrap()
            .1;
        assert!(q7.contains("C1.date < C2.date"), "{q7}");
    }

    #[test]
    fn q8_rewrites_mining_condition() {
        let db = purchase_db();
        let stmt = parse_mine_rule(
            "MINE RULE F AS SELECT DISTINCT item AS BODY, item AS HEAD \
             WHERE BODY.price >= 100 AND HEAD.price < 100 \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3",
        )
        .unwrap();
        let t = translate(&stmt, db.catalog()).unwrap();
        let q8 = steps_sql(&t.preprocess)
            .into_iter()
            .find(|(id, _)| id == "Q8")
            .unwrap()
            .1;
        assert!(q8.contains("MB.price >= 100 AND MH.price < 100"), "{q8}");
        assert!(q8.contains("MB.Bid <> MH.Bid"), "{q8}");
    }

    #[test]
    fn cluster_aggregates_registered_once() {
        let db = purchase_db();
        let stmt = parse_mine_rule(
            "MINE RULE F AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             CLUSTER BY date HAVING SUM(BODY.price) > SUM(HEAD.price) \
             EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3",
        )
        .unwrap();
        let t = translate(&stmt, db.catalog()).unwrap();
        let q6 = steps_sql(&t.preprocess)
            .into_iter()
            .find(|(id, _)| id == "Q6")
            .unwrap()
            .1;
        // SUM(BODY.price) and SUM(HEAD.price) strip to the same aggregate.
        assert_eq!(q6.matches("SUM(price)").count(), 1, "{q6}");
        let q7 = steps_sql(&t.preprocess)
            .into_iter()
            .find(|(id, _)| id == "Q7")
            .unwrap()
            .1;
        assert!(q7.contains("C1.aggval0 > C2.aggval0"), "{q7}");
    }

    #[test]
    fn postprocess_joins_bset() {
        let db = purchase_db();
        let t = translate(&parse_mine_rule(SIMPLE).unwrap(), db.catalog()).unwrap();
        let post = steps_sql(&t.postprocess);
        assert_eq!(post.len(), 3);
        assert!(post[1].1.contains("OutputBodies.Bid = Bset.Bid"));
        assert!(post[2].1.contains("OutputHeads.Hid = Bset.Bid"));
    }

    #[test]
    fn prefixed_names_flow_through() {
        let db = purchase_db();
        let t = crate::translator::translate_with_prefix(
            &parse_mine_rule(SIMPLE).unwrap(),
            db.catalog(),
            "MR1_",
        )
        .unwrap();
        for (_, sql) in steps_sql(&t.preprocess) {
            if sql.contains("CodedSource") {
                assert!(sql.contains("MR1_CodedSource"), "{sql}");
            }
        }
    }
}
