//! Integration-test host crate; the tests live in `/tests` at the
//! workspace root (declared as explicit `[[test]]` targets).
