//! The grammar: random schemas, data, SQL and MINE RULE statements.
//!
//! Everything is generated from a [`datagen::rng::Rng`] seed, so a
//! `(seed, case index)` pair always reproduces the same case. The module
//! also hosts the scenario generators that the per-feature agreement
//! suites (`tests/differential.rs`, `tests/sqlexec_agreement.rs`,
//! `tests/gidset_agreement.rs`) fold in, so the whole matrix of
//! randomized workloads lives in one place.

use datagen::rng::Rng;
use minerule::algo::SimpleInput;
use relational::{Database, Value};

use crate::{FuzzCase, Op, TableDef};

// ---------------------------------------------------------------------
// Shared scalar-expression grammar
// ---------------------------------------------------------------------

/// The column/literal pools a generated scalar expression draws from.
#[derive(Debug, Clone, Default)]
pub struct ExprCols {
    pub int_cols: Vec<String>,
    pub float_cols: Vec<String>,
    pub str_cols: Vec<String>,
    /// String literals (quoted already, e.g. `'alpha'`).
    pub str_literals: Vec<String>,
    /// LIKE patterns (quoted already, e.g. `'%a%'`).
    pub like_patterns: Vec<String>,
}

impl ExprCols {
    /// The pool used by the compiled-vs-interpreted expression suite: a
    /// table with every value class the expression language touches.
    pub fn abcs_fixture() -> ExprCols {
        ExprCols {
            int_cols: vec!["a".into(), "b".into()],
            float_cols: vec!["c".into()],
            str_cols: vec!["s".into()],
            str_literals: vec!["'alpha'".into()],
            like_patterns: vec![
                "'%a%'".into(),
                "'_eta'".into(),
                "'GAMMA__9'".into(),
                "'%'".into(),
            ],
        }
    }
}

/// A random leaf: a column reference, `NULL`, or a literal. The grammar
/// deliberately mixes types, so expressions can be ill-typed or erroring
/// (string arithmetic, division by zero) — every execution strategy must
/// report the *same* result or error for those.
pub fn gen_leaf(rng: &mut Rng, cols: &ExprCols) -> String {
    for _ in 0..8 {
        let pick = rng.gen_below(10);
        let pool: &[String] = match pick {
            0 | 1 => &cols.int_cols,
            2 => &cols.float_cols,
            3 => &cols.str_cols,
            _ => &[],
        };
        if pick <= 3 {
            if pool.is_empty() {
                continue;
            }
            return pool[rng.gen_range_usize(0, pool.len())].clone();
        }
        return match pick {
            4 => "NULL".into(),
            5 => "0".into(),
            6 => format!("{}", rng.gen_below(20) as i64 - 10),
            7 => "1.5".into(),
            8 if !cols.str_literals.is_empty() => {
                cols.str_literals[rng.gen_range_usize(0, cols.str_literals.len())].clone()
            }
            _ => "2".into(),
        };
    }
    "2".into()
}

/// A random scalar expression of bounded depth over the given pools,
/// covering arithmetic, comparisons, AND/OR/NOT, BETWEEN, IS NULL, IN,
/// CASE, ABS/LENGTH, LIKE, and UPPER/LOWER.
pub fn gen_expr(rng: &mut Rng, depth: usize, cols: &ExprCols) -> String {
    if depth == 0 {
        return gen_leaf(rng, cols);
    }
    let sub = |rng: &mut Rng| gen_expr(rng, depth - 1, cols);
    match rng.gen_below(14) {
        0 => gen_leaf(rng, cols),
        1 => {
            let op = ["+", "-", "*", "/"][rng.gen_below(4) as usize];
            format!("({} {op} {})", sub(rng), sub(rng))
        }
        2 => {
            let op = ["=", "<>", "<", "<=", ">", ">="][rng.gen_below(6) as usize];
            format!("({} {op} {})", sub(rng), sub(rng))
        }
        3 => format!("({} AND {})", sub(rng), sub(rng)),
        4 => format!("({} OR {})", sub(rng), sub(rng)),
        5 => format!("(NOT {})", sub(rng)),
        6 => format!(
            "({} BETWEEN {} AND {})",
            sub(rng),
            gen_leaf(rng, cols),
            gen_leaf(rng, cols)
        ),
        7 => {
            let not = if rng.gen_below(2) == 0 { "" } else { " NOT" };
            format!("({}{not} IS NULL)", sub(rng))
        }
        8 => {
            let not = if rng.gen_below(2) == 0 { "" } else { "NOT " };
            format!(
                "({} {not}IN ({}, {}, {}))",
                sub(rng),
                gen_leaf(rng, cols),
                gen_leaf(rng, cols),
                gen_leaf(rng, cols)
            )
        }
        9 => format!(
            "(CASE WHEN {} THEN {} ELSE {} END)",
            sub(rng),
            sub(rng),
            sub(rng)
        ),
        10 => format!("ABS({})", sub(rng)),
        11 => format!("LENGTH({})", sub(rng)),
        12 if !cols.str_cols.is_empty() && !cols.like_patterns.is_empty() => {
            let col = &cols.str_cols[rng.gen_range_usize(0, cols.str_cols.len())];
            let pat = &cols.like_patterns[rng.gen_range_usize(0, cols.like_patterns.len())];
            format!("({col} LIKE {pat})")
        }
        _ => {
            let f = ["UPPER", "LOWER"][rng.gen_below(2) as usize];
            format!("{f}({})", sub(rng))
        }
    }
}

// ---------------------------------------------------------------------
// Folded-in scenario generators (differential / gidset suites)
// ---------------------------------------------------------------------

/// Up to 5 customers, each with up to 6 purchases over 3 dates and 8
/// items — the differential suite's compact dataset description.
pub fn random_purchases(rng: &mut Rng) -> Vec<Vec<(u8, u8)>> {
    let customers = rng.gen_range_usize(1, 5);
    (0..customers)
        .map(|_| {
            let n = rng.gen_range_usize(1, 6);
            (0..n)
                .map(|_| (rng.gen_range_u32(0, 3) as u8, rng.gen_range_u32(0, 8) as u8))
                .collect()
        })
        .collect()
}

/// Build a Purchase-like database from a compact description: for each
/// customer, a list of (date index, item id) purchases. Item prices are
/// deterministic: items 0..3 cost ≥ 100, the rest < 100.
pub fn build_purchase_db(purchases: &[Vec<(u8, u8)>]) -> Database {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE Purchase (tr INT, customer VARCHAR, item VARCHAR, \
         date DATE, price INT, qty INT)",
    )
    .unwrap();
    let base = relational::Date::from_ymd(1995, 3, 1).unwrap();
    let table = db.catalog_mut().table_mut("Purchase").unwrap();
    let mut tr = 0i64;
    for (c, items) in purchases.iter().enumerate() {
        for &(d, k) in items {
            tr += 1;
            table
                .insert(vec![
                    Value::Int(tr),
                    Value::Str(format!("c{c}")),
                    Value::Str(format!("it{k}")),
                    Value::Date(base.plus_days(d as i32)),
                    Value::Int(if k < 4 { 120 + k as i64 } else { 10 + k as i64 }),
                    Value::Int(1),
                ])
                .unwrap();
        }
    }
    db
}

/// A random core-operator workload: `groups` baskets over a
/// `catalog`-item universe, each item drawn independently with
/// probability `density`. Small catalogs with high density force the
/// bitset arm of the `auto` gid-set policy; large catalogs with low
/// density keep it on lists (the gid-set agreement suite's generator).
pub fn random_simple_input(groups: usize, catalog: u32, density: f64, seed: u64) -> SimpleInput {
    let mut rng = Rng::seed_from_u64(seed);
    let transactions: Vec<Vec<u32>> = (0..groups)
        .map(|_| {
            (0..catalog)
                .filter(|_| rng.gen_f64() < density)
                .collect::<Vec<u32>>()
        })
        .collect();
    let total = transactions.len() as u32;
    // Support low enough that several levels survive at every density.
    let min_groups = ((total as f64 * density * 0.5).ceil() as u32).max(2);
    SimpleInput {
        groups: transactions,
        total_groups: total,
        min_groups,
    }
}

// ---------------------------------------------------------------------
// Case generation
// ---------------------------------------------------------------------

/// Knobs of the case generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Upper bound on total data rows across a case's tables.
    pub max_rows: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { max_rows: 36 }
    }
}

/// What the generator knows about a table it created (for building
/// later well-typed queries against it).
struct GenTable {
    name: String,
    int_cols: Vec<String>,
    float_cols: Vec<String>,
    str_cols: Vec<String>,
}

impl GenTable {
    fn expr_cols(&self, items: u32) -> ExprCols {
        let mut lits: Vec<String> = (0..3.min(items)).map(|k| format!("'it{k}'")).collect();
        lits.push("'c0'".into());
        ExprCols {
            int_cols: self.int_cols.clone(),
            float_cols: self.float_cols.clone(),
            str_cols: self.str_cols.clone(),
            str_literals: lits,
            like_patterns: vec!["'it%'".into(), "'%2'".into(), "'it_'".into(), "'%'".into()],
        }
    }

    fn any_col(&self, rng: &mut Rng) -> String {
        let mut all: Vec<&String> = self.int_cols.iter().collect();
        all.extend(self.str_cols.iter());
        all[rng.gen_range_usize(0, all.len())].clone()
    }
}

/// The full per-case generator state.
struct Gen<'a> {
    rng: &'a mut Rng,
    cfg: &'a GenConfig,
    /// Item-universe size of the fact table (item ids `it0..it{items-1}`).
    items: u32,
    customers: u32,
    tables: Vec<GenTable>,
    /// Does the case include the `Product` dimension table?
    has_dim: bool,
    next_snap: u32,
    next_mine: u32,
}

/// Deterministic price per item id: the low ids are "expensive"
/// (≥ 100), the rest cheap — so price-based mining conditions bite.
fn price_of(item: u32) -> i64 {
    if item < 3 {
        110 + 10 * item as i64
    } else {
        15 + 5 * item as i64
    }
}

/// Generate the case for `(seed, index)`: schema + data + operations.
pub fn gen_case(seed: u64, index: u64, cfg: &GenConfig) -> FuzzCase {
    let mut rng = Rng::seed_from_u64(seed ^ index.wrapping_mul(0x9e3779b97f4a7c15));
    let mut g = Gen {
        items: rng.gen_range_u32(5, 9),
        customers: rng.gen_range_u32(2, 6),
        rng: &mut rng,
        cfg,
        tables: Vec::new(),
        has_dim: false,
        next_snap: 0,
        next_mine: 0,
    };
    let mut case = FuzzCase::default();
    g.gen_tables(&mut case);
    g.gen_ops(&mut case);
    case
}

impl Gen<'_> {
    // ---- schema + data -------------------------------------------------

    fn gen_tables(&mut self, case: &mut FuzzCase) {
        let mut budget = self.cfg.max_rows.max(4);

        // The fact table is always present: the mining workload.
        let fact_rows = (budget * 7 / 10).max(4).min(budget);
        budget -= fact_rows;
        case.tables.push(self.gen_fact(fact_rows));
        self.tables.push(GenTable {
            name: "Purchase".into(),
            int_cols: vec!["tr".into(), "price".into(), "qty".into()],
            float_cols: vec![],
            str_cols: vec!["customer".into(), "item".into()],
        });

        // Sometimes a dimension table keyed on a distinct column name, so
        // mine-over-join source queries stay unambiguous (WARMeR-style).
        if budget >= self.items as usize && self.rng.gen_below(2) == 0 {
            self.has_dim = true;
            let rows: Vec<String> = (0..self.items)
                .map(|k| format!("('it{k}', 'cat{}', {})", k % 3, (k % 4) as i64 + 1))
                .collect();
            budget -= rows.len();
            case.tables.push(TableDef {
                name: "Product".into(),
                create: "CREATE TABLE Product (pitem VARCHAR, category VARCHAR, grade INT)".into(),
                rows,
            });
            self.tables.push(GenTable {
                name: "Product".into(),
                int_cols: vec!["grade".into()],
                float_cols: vec![],
                str_cols: vec!["pitem".into(), "category".into()],
            });
        }

        // Sometimes a small unrelated table with a FLOAT column, for the
        // plain-SQL side of the grammar.
        if budget >= 3 && self.rng.gen_below(2) == 0 {
            let n = self.rng.gen_range_usize(2, budget.min(6) + 1);
            let rows: Vec<String> = (0..n)
                .map(|k| {
                    format!(
                        "({}, 'v{}', {}.{})",
                        k as i64 - 1,
                        self.rng.gen_below(4),
                        self.rng.gen_below(9),
                        self.rng.gen_below(100)
                    )
                })
                .collect();
            case.tables.push(TableDef {
                name: "Misc".into(),
                create: "CREATE TABLE Misc (k INT, v VARCHAR, f FLOAT)".into(),
                rows,
            });
            self.tables.push(GenTable {
                name: "Misc".into(),
                int_cols: vec!["k".into()],
                float_cols: vec!["f".into()],
                str_cols: vec!["v".into()],
            });
        }
    }

    fn gen_fact(&mut self, rows: usize) -> TableDef {
        let base = relational::Date::from_ymd(1995, 3, 1).unwrap();
        let mut tuples: Vec<String> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        let mut attempts = 0;
        while tuples.len() < rows && attempts < rows * 4 {
            attempts += 1;
            let c = self.rng.gen_range_u32(0, self.customers);
            let d = self.rng.gen_range_u32(0, 3);
            let k = self.rng.gen_range_u32(0, self.items);
            if !seen.insert((c, d, k)) {
                continue; // no exact duplicate basket lines
            }
            let qty = 1 + self.rng.gen_below(3) as i64;
            // tr identifies the (customer, date) basket.
            let tr = (c * 10 + d) as i64;
            tuples.push(format!(
                "({tr}, 'c{c}', 'it{k}', DATE '{}', {}, {qty})",
                base.plus_days(d as i32),
                price_of(k),
            ));
        }
        TableDef {
            name: "Purchase".into(),
            create: "CREATE TABLE Purchase (tr INT, customer VARCHAR, item VARCHAR, \
                     date DATE, price INT, qty INT)"
                .into(),
            rows: tuples,
        }
    }

    // ---- operations ----------------------------------------------------

    fn gen_ops(&mut self, case: &mut FuzzCase) {
        let queries = self.rng.gen_range_usize(2, 5);
        let mines = self.rng.gen_range_usize(1, 3);
        let dmls = self.rng.gen_range_usize(0, 4);

        // Interleave: build a shuffled tag list, then emit in order.
        let mut tags: Vec<u8> = vec![0u8; queries];
        tags.extend(std::iter::repeat(1u8).take(mines));
        tags.extend(std::iter::repeat(2u8).take(dmls));
        // Fisher-Yates with the case RNG.
        for i in (1..tags.len()).rev() {
            let j = self.rng.gen_range_usize(0, i + 1);
            tags.swap(i, j);
        }

        for tag in tags {
            match tag {
                0 => {
                    let q = self.gen_query();
                    case.ops.push(Op::Query(q));
                }
                1 => self.gen_mine_ops(case),
                _ => {
                    let d = self.gen_dml();
                    case.ops.push(Op::Dml(d));
                }
            }
        }
    }

    fn table(&mut self) -> usize {
        self.rng.gen_range_usize(0, self.tables.len())
    }

    // ---- SQL queries ---------------------------------------------------

    fn gen_query(&mut self) -> String {
        match self.rng.gen_below(6) {
            0 => self.gen_simple_select(),
            1 => self.gen_aggregate_select(),
            2 => self.gen_join_select(),
            3 => self.gen_set_op(),
            4 => self.gen_subquery_select(),
            _ => self.gen_derived_select(),
        }
    }

    fn gen_simple_select(&mut self) -> String {
        let t = self.table();
        let cols = self.tables[t].expr_cols(self.items);
        let name = self.tables[t].name.clone();
        let distinct = if self.rng.gen_below(3) == 0 {
            "DISTINCT "
        } else {
            ""
        };
        let nproj = self.rng.gen_range_usize(1, 4);
        let projs: Vec<String> = (0..nproj)
            .map(|i| format!("{} AS p{i}", gen_expr(self.rng, 2, &cols)))
            .collect();
        let pred = if self.rng.gen_below(3) > 0 {
            format!(" WHERE {}", gen_expr(self.rng, 2, &cols))
        } else {
            String::new()
        };
        format!("SELECT {distinct}{} FROM {name}{pred}", projs.join(", "))
    }

    fn gen_aggregate_select(&mut self) -> String {
        let t = self.table();
        let table = &self.tables[t];
        let name = table.name.clone();
        let key = table.any_col(self.rng);
        let icol = if table.int_cols.is_empty() {
            "1".to_string()
        } else {
            table.int_cols[self.rng.gen_range_usize(0, table.int_cols.len())].clone()
        };
        let agg = match self.rng.gen_below(4) {
            0 => format!("SUM({icol})"),
            1 => format!("MAX({icol})"),
            2 => format!("MIN({icol})"),
            _ => format!("AVG({icol})"),
        };
        let cols = self.tables[t].expr_cols(self.items);
        let pred = if self.rng.gen_below(2) == 0 {
            format!(" WHERE {}", gen_expr(self.rng, 1, &cols))
        } else {
            String::new()
        };
        let having = match self.rng.gen_below(3) {
            0 => format!(" HAVING COUNT(*) >= {}", 1 + self.rng.gen_below(3)),
            1 => format!(" HAVING {agg} > {}", self.rng.gen_below(50)),
            _ => String::new(),
        };
        format!("SELECT {key}, COUNT(*), {agg} FROM {name}{pred} GROUP BY {key}{having}")
    }

    fn gen_join_select(&mut self) -> String {
        // Fact self-join or fact-dimension join, comma or explicit form.
        if self.has_dim && self.rng.gen_below(2) == 0 {
            let extra = if self.rng.gen_below(2) == 0 {
                format!(" AND price >= {}", 20 + 10 * self.rng.gen_below(10))
            } else {
                String::new()
            };
            match self.rng.gen_below(3) {
                0 => format!(
                    "SELECT customer, category, COUNT(*) FROM Purchase, Product \
                     WHERE item = pitem{extra} GROUP BY customer, category"
                ),
                1 => format!(
                    "SELECT DISTINCT item, grade FROM Purchase JOIN Product \
                     ON item = pitem{extra}"
                ),
                _ => format!(
                    "SELECT p.item, d.category FROM Purchase p LEFT OUTER JOIN Product d \
                     ON p.item = d.pitem{extra}"
                ),
            }
        } else {
            let key = ["customer", "tr", "item", "date"][self.rng.gen_below(4) as usize];
            let cmp = ["<", "<=", "<>"][self.rng.gen_below(3) as usize];
            match self.rng.gen_below(3) {
                0 => format!(
                    "SELECT p1.item, p2.item FROM Purchase p1, Purchase p2 \
                     WHERE p1.{key} = p2.{key} AND p1.item {cmp} p2.item"
                ),
                1 => format!(
                    "SELECT p1.tr, p2.item FROM Purchase p1 JOIN Purchase p2 \
                     ON p1.{key} = p2.{key} AND p1.price > p2.price"
                ),
                _ => format!(
                    "SELECT COUNT(*) FROM Purchase p1, Purchase p2 \
                     WHERE p1.{key} = p2.{key} AND p1.qty {cmp} p2.qty"
                ),
            }
        }
    }

    fn gen_set_op(&mut self) -> String {
        let t = self.table();
        let table = &self.tables[t];
        let name = table.name.clone();
        let col = table.any_col(self.rng);
        let cols = self.tables[t].expr_cols(self.items);
        let op = ["UNION", "INTERSECT", "EXCEPT"][self.rng.gen_below(3) as usize];
        let p1 = gen_expr(self.rng, 1, &cols);
        let p2 = gen_expr(self.rng, 1, &cols);
        format!("SELECT {col} FROM {name} WHERE {p1} {op} SELECT {col} FROM {name} WHERE {p2}")
    }

    fn gen_subquery_select(&mut self) -> String {
        match self.rng.gen_below(3) {
            0 => "SELECT item FROM Purchase WHERE price > \
                  (SELECT AVG(price) FROM Purchase)"
                .into(),
            1 => format!(
                "SELECT DISTINCT customer FROM Purchase WHERE item IN \
                 (SELECT item FROM Purchase WHERE qty >= {})",
                1 + self.rng.gen_below(3)
            ),
            _ => "SELECT DISTINCT p1.item FROM Purchase p1 WHERE EXISTS \
                  (SELECT * FROM Purchase p2 WHERE p2.item = p1.item AND p2.tr <> p1.tr)"
                .into(),
        }
    }

    fn gen_derived_select(&mut self) -> String {
        let cut = 50 + 25 * self.rng.gen_below(20);
        format!(
            "SELECT customer, total FROM (SELECT customer, SUM(price * qty) AS total \
             FROM Purchase GROUP BY customer) spend WHERE total > {cut}"
        )
    }

    // ---- DML / DDL -----------------------------------------------------

    fn gen_dml(&mut self) -> String {
        let item = self.rng.gen_range_u32(0, self.items);
        match self.rng.gen_below(5) {
            0 => {
                let c = self.rng.gen_range_u32(0, self.customers);
                let d = self.rng.gen_below(3);
                format!(
                    "INSERT INTO Purchase VALUES ({}, 'c{c}', 'it{item}', \
                     DATE '1995-03-{:02}', {}, {})",
                    (c * 10 + d as u32) as i64,
                    d + 1,
                    price_of(item),
                    1 + self.rng.gen_below(3)
                )
            }
            1 => format!(
                "UPDATE Purchase SET price = price + {} WHERE item = 'it{item}'",
                1 + self.rng.gen_below(9)
            ),
            2 => format!(
                "UPDATE Purchase SET qty = qty + 1 WHERE tr <= {}",
                self.rng.gen_below(30)
            ),
            3 => {
                let pred = match self.rng.gen_below(3) {
                    0 => format!("item = 'it{item}' AND qty = 1"),
                    1 => format!("tr = {}", self.rng.gen_below(40)),
                    _ => format!("price > {} AND qty >= 3", 40 + self.rng.gen_below(80)),
                };
                format!("DELETE FROM Purchase WHERE {pred}")
            }
            _ => {
                // DDL: snapshot a projection into a new table, which later
                // queries may reference.
                let snap = format!("Snap{}", self.next_snap);
                self.next_snap += 1;
                let pred = match self.rng.gen_below(3) {
                    0 => format!("price >= {}", 20 + 10 * self.rng.gen_below(10)),
                    1 => format!("qty >= {}", 1 + self.rng.gen_below(2)),
                    _ => format!("customer <> 'c{}'", self.rng.gen_below(3)),
                };
                let stmt = format!(
                    "CREATE TABLE {snap} AS SELECT tr, customer, item, price, qty \
                     FROM Purchase WHERE {pred}"
                );
                self.tables.push(GenTable {
                    name: snap,
                    int_cols: vec!["tr".into(), "price".into(), "qty".into()],
                    float_cols: vec![],
                    str_cols: vec!["customer".into(), "item".into()],
                });
                stmt
            }
        }
    }

    // ---- MINE RULE statements ------------------------------------------

    /// Emit a mine statement, plus (sometimes) an interactive-session
    /// continuation of it: an identical rerun, a tightened- or
    /// loosened-threshold rerun, or a source-table delta (INSERT/DELETE)
    /// followed by the same statement again. Together these exercise the
    /// preprocess-cache hit path and every mined-result cache path —
    /// plain hit, refine, clean loosened miss and incremental delta
    /// re-mining — under every knob mix.
    fn gen_mine_ops(&mut self, case: &mut FuzzCase) {
        let out = format!("R{}", self.next_mine);
        self.next_mine += 1;
        let (stmt, support, confidence) = self.gen_mine(&out);
        case.ops.push(Op::Mine(stmt.clone()));
        match self.rng.gen_below(6) {
            0 => case.ops.push(Op::Mine(stmt)), // identical rerun
            1 | 2 => {
                // Tightened thresholds: the caches' superset rules admit
                // these as warm hits.
                let s2 = (support * 2.0).min(1.0);
                let c2 = (confidence + 0.2).min(1.0);
                case.ops.push(Op::Mine(stmt.replace(
                    &format!("SUPPORT: {support}, CONFIDENCE: {confidence}"),
                    &format!("SUPPORT: {s2}, CONFIDENCE: {c2}"),
                )));
            }
            3 => {
                // Loosened support: the mined-result cache must miss
                // cleanly and re-mine at the lower threshold.
                let s2 = support / 2.0;
                case.ops.push(Op::Mine(stmt.replace(
                    &format!("SUPPORT: {support}, CONFIDENCE: {confidence}"),
                    &format!("SUPPORT: {s2}, CONFIDENCE: {confidence}"),
                )));
            }
            4 => {
                // Source delta, then the same statement again: exercises
                // incremental delta re-mining (and its full-mine
                // fallbacks) against the cold baseline.
                let dml = self.gen_delta_dml();
                case.ops.push(Op::Dml(dml));
                case.ops.push(Op::Mine(stmt));
            }
            _ => {}
        }
    }

    /// A tracked source mutation for the delta-rerun pattern: an INSERT
    /// into an existing or fresh group, or a row-level DELETE. (UPDATEs
    /// are generated by the ordinary DML pool; they log as delete+insert
    /// pairs and ride the same incremental delta path.)
    fn gen_delta_dml(&mut self) -> String {
        let item = self.rng.gen_range_u32(0, self.items);
        match self.rng.gen_below(3) {
            0 => {
                // Grow an existing transaction's range.
                let c = self.rng.gen_range_u32(0, self.customers);
                let d = self.rng.gen_below(3);
                format!(
                    "INSERT INTO Purchase VALUES ({}, 'c{c}', 'it{item}', \
                     DATE '1995-03-{:02}', {}, {})",
                    (c * 10 + d as u32) as i64,
                    d + 1,
                    price_of(item),
                    1 + self.rng.gen_below(3)
                )
            }
            1 => {
                // A whole new group.
                let c = self.rng.gen_range_u32(0, self.customers);
                format!(
                    "INSERT INTO Purchase VALUES ({}, 'c{c}', 'it{item}', \
                     DATE '1995-03-03', {}, 1)",
                    500 + self.rng.gen_below(40) as i64,
                    price_of(item),
                )
            }
            _ => format!(
                "DELETE FROM Purchase WHERE item = 'it{item}' AND tr = {}",
                self.rng.gen_below(40)
            ),
        }
    }

    fn gen_mine(&mut self, out: &str) -> (String, f64, f64) {
        let support = [0.1, 0.2, 0.25, 0.3, 0.4, 0.5][self.rng.gen_range_usize(0, 6)];
        let confidence = [0.1, 0.2, 0.5, 0.7][self.rng.gen_range_usize(0, 4)];
        let group_by = ["customer", "tr"][self.rng.gen_below(2) as usize];

        // Over-join variant: mine association rules over the fact-dim
        // join, with the body/head built from the dimension attribute.
        if self.has_dim && self.rng.gen_below(5) == 0 {
            let stmt = format!(
                "MINE RULE {out} AS SELECT DISTINCT 1..n category AS BODY, \
                 1..1 category AS HEAD, SUPPORT, CONFIDENCE \
                 FROM Purchase, Product WHERE item = pitem GROUP BY customer \
                 EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: {confidence}"
            );
            return (stmt, support, confidence);
        }

        // Element schemas: disjoint from grouping/clustering by
        // construction. `qty` in a schema removes it from the cluster
        // pool; `tr` grouping removes nothing we use.
        let (body_schema, head_schema) = match self.rng.gen_below(6) {
            0 | 1 => ("item", "item"),
            2 => ("item", "qty"), // cross-schema heads
            3 => ("qty", "item"),
            4 => ("item, qty", "item, qty"),
            _ => ("item", "item"),
        };
        let uses_qty = body_schema.contains("qty") || head_schema.contains("qty");

        let body_card = ["1..1", "1..2", "1..n", "1..n"][self.rng.gen_below(4) as usize];
        let head_card = ["1..1", "1..1", "1..2", "2..2"][self.rng.gen_below(4) as usize];

        // Optional clauses, drawn independently.
        let mining_cond = match self.rng.gen_below(5) {
            0 => Some("BODY.price >= 100 AND HEAD.price < 100".to_string()),
            1 => Some("BODY.price > HEAD.price".to_string()),
            2 if !uses_qty => Some(format!("HEAD.qty >= {}", 1 + self.rng.gen_below(2))),
            _ => None,
        };
        let source_cond = match self.rng.gen_below(5) {
            0 => Some(format!("price < {}", 60 + 20 * self.rng.gen_below(6))),
            1 => Some("date BETWEEN DATE '1995-03-01' AND DATE '1995-03-02'".to_string()),
            2 => Some(format!(
                "qty >= 1 AND price >= {}",
                10 + self.rng.gen_below(40)
            )),
            _ => None,
        };
        let group_cond = match self.rng.gen_below(4) {
            0 => Some(format!("COUNT(item) >= {}", 1 + self.rng.gen_below(3))),
            _ => None,
        };
        // Clustering: only `date` qualifies (disjoint from every schema we
        // generate and from both grouping choices).
        let (cluster_by, cluster_cond) = if self.rng.gen_below(3) == 0 {
            let cond = match self.rng.gen_below(4) {
                0 => Some("BODY.date < HEAD.date".to_string()),
                1 => Some("BODY.date <= HEAD.date".to_string()),
                2 => Some("SUM(BODY.price) > SUM(HEAD.price)".to_string()),
                _ => None,
            };
            (Some("date"), cond)
        } else {
            (None, None)
        };

        let mut stmt = format!(
            "MINE RULE {out} AS SELECT DISTINCT {body_card} {body_schema} AS BODY, \
             {head_card} {head_schema} AS HEAD, SUPPORT, CONFIDENCE"
        );
        if let Some(m) = &mining_cond {
            stmt.push_str(&format!(" WHERE {m}"));
        }
        stmt.push_str(" FROM Purchase");
        if let Some(w) = &source_cond {
            stmt.push_str(&format!(" WHERE {w}"));
        }
        stmt.push_str(&format!(" GROUP BY {group_by}"));
        if let Some(h) = &group_cond {
            stmt.push_str(&format!(" HAVING {h}"));
        }
        if let Some(cb) = cluster_by {
            stmt.push_str(&format!(" CLUSTER BY {cb}"));
            if let Some(cc) = &cluster_cond {
                stmt.push_str(&format!(" HAVING {cc}"));
            }
        }
        stmt.push_str(&format!(
            " EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: {confidence}"
        ));
        (stmt, support, confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minerule::parse_mine_rule;

    #[test]
    fn cases_are_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let a = gen_case(7, 3, &cfg);
        let b = gen_case(7, 3, &cfg);
        let c = gen_case(8, 3, &cfg);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_mine_statements_parse() {
        let cfg = GenConfig::default();
        let mut mines = 0;
        for i in 0..40 {
            let case = gen_case(0xF0, i, &cfg);
            assert!(case.row_count() <= cfg.max_rows);
            for op in &case.ops {
                if let Op::Mine(text) = op {
                    parse_mine_rule(text).unwrap_or_else(|e| {
                        panic!("generated statement fails to parse: {e:?}\n{text}")
                    });
                    mines += 1;
                }
            }
        }
        assert!(mines > 20, "generator produced too few mine statements");
    }

    #[test]
    fn generated_cases_cover_statement_classes() {
        // Over many cases the grammar must hit clustering, mining
        // conditions, group HAVING, cross-schema heads, and all rerun
        // flavours: plain/tightened, loosened support, and a source
        // delta followed by the same statement.
        let cfg = GenConfig::default();
        let (mut cluster, mut mining, mut having, mut cross, mut rerun) = (0, 0, 0, 0, 0);
        let (mut loosened, mut delta) = (0, 0);
        let support_of = |s: &str| {
            s.split("SUPPORT: ")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .parse::<f64>()
                .unwrap()
        };
        for i in 0..200 {
            let case = gen_case(1, i, &cfg);
            let mut prev: Option<&str> = None;
            let mut dml_between = false;
            for op in &case.ops {
                match op {
                    Op::Mine(text) => {
                        if text.contains("CLUSTER BY") {
                            cluster += 1;
                        }
                        if text.contains("AS HEAD, SUPPORT") && text.contains("WHERE BODY.") {
                            mining += 1;
                        }
                        if text.contains("HAVING COUNT") {
                            having += 1;
                        }
                        if text.contains("qty AS HEAD") || text.contains("qty AS BODY") {
                            cross += 1;
                        }
                        if let Some(p) = prev {
                            let stem = |s: &str| s.split(" EXTRACTING").next().unwrap().to_string();
                            if stem(p) == stem(text) {
                                rerun += 1;
                                if dml_between {
                                    delta += 1;
                                }
                                if support_of(text) < support_of(p) {
                                    loosened += 1;
                                }
                            }
                        }
                        prev = Some(text);
                        dml_between = false;
                    }
                    Op::Dml(_) => dml_between = true,
                    _ => {}
                }
            }
        }
        assert!(cluster > 10, "clustered statements: {cluster}");
        assert!(mining > 10, "mining conditions: {mining}");
        assert!(having > 10, "group HAVING: {having}");
        assert!(cross > 10, "cross-schema heads: {cross}");
        assert!(rerun > 10, "refinement reruns: {rerun}");
        assert!(loosened > 10, "loosened-threshold reruns: {loosened}");
        assert!(delta > 10, "delta-then-repeat mines: {delta}");
    }

    #[test]
    fn purchase_db_builder_round_trips() {
        let mut rng = Rng::seed_from_u64(5);
        let purchases = random_purchases(&mut rng);
        let mut db = build_purchase_db(&purchases);
        let n: usize = purchases.iter().map(Vec::len).sum();
        let rs = db.query("SELECT COUNT(*) FROM Purchase").unwrap();
        assert_eq!(rs.scalar().unwrap().to_string(), n.to_string());
    }

    #[test]
    fn simple_input_spans_densities() {
        let sparse = random_simple_input(60, 120, 0.06, 1);
        let dense = random_simple_input(12, 18, 0.5, 1);
        assert_eq!(sparse.groups.len(), 60);
        assert_eq!(dense.groups.len(), 12);
        assert!(sparse.min_groups >= 2 && dense.min_groups >= 2);
    }
}
