//! The configuration-matrix executor: run one case under many knob
//! combinations and demand identical observable behaviour.
//!
//! Every configuration replays the same setup script and operation list
//! on its own database. Per operation the runner records a rendered
//! *outcome* — sorted result rows for a `SELECT`, a bit-exact rule
//! signature for a `MINE RULE`, affected-row counts for DML, or the
//! error text — and any difference from the baseline configuration is a
//! [`Divergence`]. Small cases are additionally checked against the
//! brute-force [`minerule::reference`] oracle, and telemetry counters
//! are asserted worker-count-invariant across configurations that differ
//! only in `workers`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use minerule::algo::GidSetRepr;
use minerule::reference::reference_mine;
use minerule::{parse_mine_rule, DecodedRule, MineRuleEngine};
use relational::{Database, ExecMode, IndexPolicy, PlannerMode, SqlExec, StorageBackend};

use crate::{FuzzCase, Op};

/// The only counter legitimately dependent on the worker count (the
/// executor reports how many shards it ran).
const WORKER_DEPENDENT_COUNTER: &str = "core.shards.run";

// ---------------------------------------------------------------------
// Configurations
// ---------------------------------------------------------------------

/// One point of the execution-knob cross-product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    pub sqlexec: SqlExec,
    pub indexes: IndexPolicy,
    pub gidset: GidSetRepr,
    pub workers: usize,
    pub preprocache: bool,
    pub minecache: bool,
    pub storage: StorageBackend,
    pub planner: PlannerMode,
    pub exec: ExecMode,
}

impl Config {
    /// The pinned comparison baseline: the least clever point of the
    /// matrix — interpreted expressions, no indexes, list gid-sets, one
    /// worker, no caches, memory storage, naive planning, row-at-a-time
    /// execution.
    pub fn baseline() -> Config {
        Config {
            sqlexec: SqlExec::Interpreted,
            indexes: IndexPolicy::Off,
            gidset: GidSetRepr::List,
            workers: 1,
            preprocache: false,
            minecache: false,
            storage: StorageBackend::Memory,
            planner: PlannerMode::Naive,
            exec: ExecMode::Row,
        }
    }

    /// Human-readable knob listing, also used in repro headers.
    pub fn label(&self) -> String {
        format!(
            "sqlexec={} indexes={} gidset={} workers={} preprocache={} minecache={} storage={} planner={} exec={}",
            sqlexec_name(self.sqlexec),
            indexes_name(self.indexes),
            gidset_name(self.gidset),
            self.workers,
            if self.preprocache { "on" } else { "off" },
            if self.minecache { "on" } else { "off" },
            storage_name(self.storage),
            self.planner.name(),
            exec_name(self.exec),
        )
    }

    /// The label with the `workers` axis stripped: configurations that
    /// share this key must publish identical telemetry counters (modulo
    /// `core.shards.run`).
    fn worker_group_key(&self) -> String {
        format!(
            "sqlexec={} indexes={} gidset={} preprocache={} minecache={} storage={} planner={} exec={}",
            sqlexec_name(self.sqlexec),
            indexes_name(self.indexes),
            gidset_name(self.gidset),
            if self.preprocache { "on" } else { "off" },
            if self.minecache { "on" } else { "off" },
            storage_name(self.storage),
            self.planner.name(),
            exec_name(self.exec),
        )
    }

    /// Short filesystem-safe slug for per-config scratch directories.
    fn slug(&self) -> String {
        format!(
            "{}_{}_{}_w{}_{}_{}_{}_{}_{}",
            sqlexec_name(self.sqlexec),
            indexes_name(self.indexes),
            gidset_name(self.gidset),
            self.workers,
            if self.preprocache { "c1" } else { "c0" },
            if self.minecache { "m1" } else { "m0" },
            storage_name(self.storage),
            self.planner.name(),
            exec_name(self.exec),
        )
    }
}

fn sqlexec_name(m: SqlExec) -> &'static str {
    match m {
        SqlExec::Compiled => "compiled",
        SqlExec::Interpreted => "interpreted",
        SqlExec::Auto => "auto",
    }
}

fn indexes_name(p: IndexPolicy) -> &'static str {
    match p {
        IndexPolicy::Auto => "auto",
        IndexPolicy::Off => "off",
    }
}

fn gidset_name(g: GidSetRepr) -> &'static str {
    match g {
        GidSetRepr::List => "list",
        GidSetRepr::Bitset => "bitset",
        GidSetRepr::Auto => "auto",
    }
}

fn storage_name(s: StorageBackend) -> &'static str {
    match s {
        StorageBackend::Memory => "memory",
        StorageBackend::Paged => "paged",
    }
}

fn exec_name(m: ExecMode) -> &'static str {
    match m {
        ExecMode::Vector => "vector",
        ExecMode::Row => "row",
        ExecMode::Auto => "auto",
    }
}

/// Which slice of the cross-product a run covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Matrix {
    /// One configuration per axis value plus two kitchen-sink mixes
    /// (14 configurations) — the per-`cargo test` corpus budget.
    Quick,
    /// The full cross-product: 2 × 2 × 3 × 3 × 2 × 2 × 2 × 2 × 2 = 1152
    /// configurations — the fuzzing budget.
    Full,
}

impl Matrix {
    /// Parse a matrix name (`quick` | `full`).
    pub fn parse(name: &str) -> Option<Matrix> {
        match name.to_ascii_lowercase().as_str() {
            "quick" => Some(Matrix::Quick),
            "full" => Some(Matrix::Full),
            _ => None,
        }
    }

    /// The configurations of this matrix; the baseline is always first.
    pub fn configs(&self) -> Vec<Config> {
        let base = Config::baseline();
        match self {
            Matrix::Quick => {
                let mut out = vec![base];
                out.push(Config {
                    sqlexec: SqlExec::Compiled,
                    ..base
                });
                out.push(Config {
                    indexes: IndexPolicy::Auto,
                    ..base
                });
                out.push(Config {
                    gidset: GidSetRepr::Bitset,
                    ..base
                });
                out.push(Config {
                    gidset: GidSetRepr::Auto,
                    ..base
                });
                out.push(Config { workers: 4, ..base });
                out.push(Config {
                    preprocache: true,
                    ..base
                });
                out.push(Config {
                    minecache: true,
                    ..base
                });
                out.push(Config {
                    storage: StorageBackend::Paged,
                    ..base
                });
                out.push(Config {
                    planner: PlannerMode::Cost,
                    ..base
                });
                out.push(Config {
                    exec: ExecMode::Vector,
                    ..base
                });
                out.push(Config {
                    sqlexec: SqlExec::Compiled,
                    exec: ExecMode::Auto,
                    ..base
                });
                out.push(Config {
                    sqlexec: SqlExec::Compiled,
                    indexes: IndexPolicy::Auto,
                    gidset: GidSetRepr::Auto,
                    workers: 4,
                    preprocache: true,
                    minecache: true,
                    storage: StorageBackend::Paged,
                    planner: PlannerMode::Cost,
                    exec: ExecMode::Auto,
                });
                out.push(Config {
                    sqlexec: SqlExec::Compiled,
                    indexes: IndexPolicy::Auto,
                    gidset: GidSetRepr::Bitset,
                    workers: 2,
                    preprocache: true,
                    minecache: true,
                    storage: StorageBackend::Memory,
                    planner: PlannerMode::Cost,
                    exec: ExecMode::Vector,
                });
                out
            }
            Matrix::Full => {
                let mut out = vec![base];
                for sqlexec in [SqlExec::Interpreted, SqlExec::Compiled] {
                    for indexes in [IndexPolicy::Off, IndexPolicy::Auto] {
                        for gidset in [GidSetRepr::List, GidSetRepr::Bitset, GidSetRepr::Auto] {
                            for workers in [1usize, 2, 4] {
                                for preprocache in [false, true] {
                                    for minecache in [false, true] {
                                        for storage in
                                            [StorageBackend::Memory, StorageBackend::Paged]
                                        {
                                            for planner in [PlannerMode::Naive, PlannerMode::Cost] {
                                                for exec in [ExecMode::Row, ExecMode::Vector] {
                                                    let c = Config {
                                                        sqlexec,
                                                        indexes,
                                                        gidset,
                                                        workers,
                                                        preprocache,
                                                        minecache,
                                                        storage,
                                                        planner,
                                                        exec,
                                                    };
                                                    if c != base {
                                                        out.push(c);
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                out
            }
        }
    }
}

// ---------------------------------------------------------------------
// Injected skews (for proving the harness catches real divergences)
// ---------------------------------------------------------------------

/// A deliberate fault injected into the runner, used by tests and
/// `tcdm-fuzz --inject` to prove that a divergence is caught, shrunk and
/// reproduced. [`Skew::None`] in normal operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Skew {
    #[default]
    None,
    /// Under compiled expressions, silently drop the last row of every
    /// non-empty SELECT result (models a codegen bug).
    CompiledDropsLastRow,
    /// Under bitset gid-sets, silently drop the last mined rule (models
    /// an intersection bug in one representation).
    BitsetDropsLastRule,
}

impl Skew {
    /// Parse a skew name (`none` | `compiled-drop-row` | `bitset-drop-rule`).
    pub fn parse(name: &str) -> Option<Skew> {
        match name.to_ascii_lowercase().as_str() {
            "none" => Some(Skew::None),
            "compiled-drop-row" => Some(Skew::CompiledDropsLastRow),
            "bitset-drop-rule" => Some(Skew::BitsetDropsLastRule),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Options / results
// ---------------------------------------------------------------------

/// Knobs of the matrix runner.
#[derive(Debug, Clone)]
pub struct MatrixOptions {
    pub matrix: Matrix,
    /// Check small cases against the brute-force reference oracle.
    pub check_reference: bool,
    /// Cases with at most this many data rows get the reference pass
    /// (the oracle is exponential in basket width, so it stays gated).
    pub reference_max_rows: usize,
    /// Injected fault, [`Skew::None`] in normal operation.
    pub skew: Skew,
    /// Scratch directory for paged-storage configurations.
    pub work_dir: PathBuf,
}

impl Default for MatrixOptions {
    fn default() -> MatrixOptions {
        MatrixOptions {
            matrix: Matrix::Full,
            check_reference: true,
            reference_max_rows: 40,
            skew: Skew::None,
            work_dir: default_work_dir(),
        }
    }
}

/// Scratch root for paged-storage runs: tmpfs when the host has it (WAL
/// fsyncs are ~free there), the system temp dir otherwise.
pub fn default_work_dir() -> PathBuf {
    let shm = Path::new("/dev/shm");
    let base = if shm.is_dir() {
        shm.to_path_buf()
    } else {
        std::env::temp_dir()
    };
    base.join(format!("tcdm_fuzz_{}", std::process::id()))
}

/// What a divergence was found against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// A configuration disagreed with the baseline configuration.
    Matrix,
    /// The pipeline disagreed with the brute-force reference oracle.
    Reference,
    /// Telemetry counters were not worker-count-invariant.
    Telemetry,
}

impl DivergenceKind {
    pub fn name(&self) -> &'static str {
        match self {
            DivergenceKind::Matrix => "matrix",
            DivergenceKind::Reference => "reference",
            DivergenceKind::Telemetry => "telemetry",
        }
    }
}

/// A reproducible disagreement between two executions of one case.
#[derive(Debug, Clone)]
pub struct Divergence {
    pub kind: DivergenceKind,
    /// Label of the configuration that disagreed.
    pub config: String,
    /// What it was compared against (baseline label, `reference`, or the
    /// worker-group partner).
    pub against: String,
    /// Index into `case.ops` (`None` = the setup script diverged).
    pub op: Option<usize>,
    /// The statement at that index, for the report.
    pub statement: String,
    pub expected: String,
    pub actual: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "divergence[{}]: {}", self.kind.name(), self.config)?;
        writeln!(f, "  against:   {}", self.against)?;
        writeln!(f, "  statement: {}", self.statement)?;
        writeln!(f, "  expected:  {}", self.expected.replace('\n', " | "))?;
        write!(f, "  actual:    {}", self.actual.replace('\n', " | "))
    }
}

/// Summary of a clean case run.
#[derive(Debug, Clone, Default)]
pub struct CaseReport {
    /// Configurations executed.
    pub configs: usize,
    /// MINE RULE statements cross-checked against the reference oracle.
    pub reference_mines: usize,
}

// ---------------------------------------------------------------------
// Single-configuration execution
// ---------------------------------------------------------------------

struct ConfigRun {
    /// Rendered outcome per slot: index 0 is the setup script, then one
    /// slot per `case.ops` entry.
    outcomes: Vec<String>,
    /// Telemetry counters accumulated over the whole run.
    counters: BTreeMap<String, u64>,
    /// Decoded rules per op index, for mine ops that succeeded.
    rules: BTreeMap<usize, Vec<DecodedRule>>,
}

/// Bit-exact signature of a rule set (floats compared by bit pattern).
pub fn signature(rules: &[DecodedRule]) -> Vec<String> {
    rules
        .iter()
        .map(|r| {
            format!(
                "{:?}=>{:?} s={:016x} c={:016x}",
                r.body,
                r.head,
                r.support.to_bits(),
                r.confidence.to_bits()
            )
        })
        .collect()
}

fn render_rows(rs: &relational::ResultSet) -> String {
    let mut lines: Vec<String> = rs.rows().iter().map(|row| format!("{row:?}")).collect();
    lines.sort();
    lines.join("\n")
}

fn run_config(
    case: &FuzzCase,
    config: &Config,
    skew: Skew,
    work_dir: &Path,
    tag: &str,
) -> ConfigRun {
    let mut run = ConfigRun {
        outcomes: Vec::with_capacity(case.ops.len() + 1),
        counters: BTreeMap::new(),
        rules: BTreeMap::new(),
    };

    let mut db = Database::new();
    db.set_sqlexec(config.sqlexec);
    db.set_index_policy(config.indexes);
    db.set_planner(config.planner);
    db.set_exec(config.exec);
    let mut scratch: Option<PathBuf> = None;
    if config.storage == StorageBackend::Paged {
        let dir = work_dir.join(format!("{tag}_{}", config.slug()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("cannot create scratch dir {}: {e}", dir.display()));
        db.set_storage_dir(&dir);
        db.set_storage(StorageBackend::Paged)
            .unwrap_or_else(|e| panic!("cannot attach paged storage in {}: {e:?}", dir.display()));
        scratch = Some(dir);
    }

    let engine = MineRuleEngine::new()
        .with_workers(config.workers)
        .with_gidset(config.gidset)
        .with_sqlexec(config.sqlexec)
        .with_preprocache(config.preprocache)
        .with_minecache(config.minecache)
        .with_planner(config.planner)
        .with_exec(config.exec);

    // Setup script: outcome slot 0.
    let mut setup = String::from("ok");
    for stmt in case.setup_statements() {
        if let Err(e) = db.execute(&stmt) {
            setup = format!("err: {e:?}");
            break;
        }
    }
    run.outcomes.push(setup);

    for (i, op) in case.ops.iter().enumerate() {
        let outcome = match op {
            Op::Dml(s) => match db.execute(s) {
                Ok(out) => format!("ok rows={}", out.rows_affected),
                Err(e) => format!("err: {e:?}"),
            },
            Op::Query(s) => match db.query(s) {
                Ok(rs) => {
                    let mut rendered = render_rows(&rs);
                    if skew == Skew::CompiledDropsLastRow
                        && config.sqlexec == SqlExec::Compiled
                        && !rendered.is_empty()
                    {
                        // Injected fault: lose the (sorted) last row.
                        rendered = match rendered.rsplit_once('\n') {
                            Some((head, _)) => head.to_string(),
                            None => String::new(),
                        };
                    }
                    format!("rows:\n{rendered}")
                }
                Err(e) => format!("err: {e:?}"),
            },
            Op::Mine(s) => match engine.execute(&mut db, s) {
                Ok(outcome) => {
                    let mut rules = outcome.rules;
                    if skew == Skew::BitsetDropsLastRule && config.gidset == GidSetRepr::Bitset {
                        rules.pop();
                    }
                    let sig = signature(&rules);
                    run.rules.insert(i, rules);
                    format!("rules:\n{}", sig.join("\n"))
                }
                Err(e) => format!("err: {e:?}"),
            },
        };
        run.outcomes.push(outcome);
    }

    run.counters = engine.metrics_snapshot().counters;
    if let Some(dir) = scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }
    run
}

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------

fn first_outcome_divergence(
    case: &FuzzCase,
    base_label: &str,
    base: &ConfigRun,
    label: &str,
    run: &ConfigRun,
) -> Option<Divergence> {
    for (slot, (expected, actual)) in base.outcomes.iter().zip(run.outcomes.iter()).enumerate() {
        if expected != actual {
            let (op, statement) = if slot == 0 {
                (None, "<setup script>".to_string())
            } else {
                (Some(slot - 1), case.ops[slot - 1].text().to_string())
            };
            return Some(Divergence {
                kind: DivergenceKind::Matrix,
                config: label.to_string(),
                against: base_label.to_string(),
                op,
                statement,
                expected: expected.clone(),
                actual: actual.clone(),
            });
        }
    }
    None
}

fn counter_divergence(
    a_label: &str,
    a: &BTreeMap<String, u64>,
    b_label: &str,
    b: &BTreeMap<String, u64>,
) -> Option<Divergence> {
    let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for key in keys {
        if key.as_str() == WORKER_DEPENDENT_COUNTER {
            continue;
        }
        let va = a.get(key).copied().unwrap_or(0);
        let vb = b.get(key).copied().unwrap_or(0);
        if va != vb {
            return Some(Divergence {
                kind: DivergenceKind::Telemetry,
                config: b_label.to_string(),
                against: a_label.to_string(),
                op: None,
                statement: format!("counter {key}"),
                expected: va.to_string(),
                actual: vb.to_string(),
            });
        }
    }
    None
}

fn norm_rules(rules: &[DecodedRule]) -> Vec<String> {
    let mut v: Vec<String> = rules
        .iter()
        .map(|r| {
            format!(
                "{:?}=>{:?} s={:.6} c={:.6}",
                r.body, r.head, r.support, r.confidence
            )
        })
        .collect();
    v.sort();
    v
}

/// Replay the case's state-changing statements on a fresh memory
/// database and cross-check every mine op the baseline solved against
/// the brute-force oracle.
// A `Divergence` is big, but Err is the once-per-fuzz-run cold path —
// boxing it would noise up every caller for nothing.
#[allow(clippy::result_large_err)]
fn reference_pass(
    case: &FuzzCase,
    base_label: &str,
    base: &ConfigRun,
) -> Result<usize, Divergence> {
    let mut db = Database::new();
    for stmt in case.setup_statements() {
        if db.execute(&stmt).is_err() {
            // Setup fails identically everywhere (already cross-checked);
            // nothing for the oracle to validate.
            return Ok(0);
        }
    }
    let mut checked = 0;
    for (i, op) in case.ops.iter().enumerate() {
        match op {
            Op::Dml(s) => {
                let _ = db.execute(s);
            }
            Op::Query(_) => {}
            Op::Mine(s) => {
                let Some(rules) = base.rules.get(&i) else {
                    continue; // errored in the pipeline too — compared across configs already
                };
                let expected = parse_mine_rule(s)
                    .and_then(|stmt| reference_mine(&mut db, &stmt))
                    .map_err(|e| Divergence {
                        kind: DivergenceKind::Reference,
                        config: base_label.to_string(),
                        against: "reference".to_string(),
                        op: Some(i),
                        statement: s.clone(),
                        expected: format!("oracle error: {e:?}"),
                        actual: format!("pipeline mined {} rules", rules.len()),
                    })?;
                let want = norm_rules(&expected);
                let got = norm_rules(rules);
                if want != got {
                    return Err(Divergence {
                        kind: DivergenceKind::Reference,
                        config: base_label.to_string(),
                        against: "reference".to_string(),
                        op: Some(i),
                        statement: s.clone(),
                        expected: want.join("\n"),
                        actual: got.join("\n"),
                    });
                }
                checked += 1;
            }
        }
    }
    Ok(checked)
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Run one case across the whole matrix. `tag` namespaces the paged
/// scratch directories (use the case number).
#[allow(clippy::result_large_err)]
pub fn run_case(
    case: &FuzzCase,
    opts: &MatrixOptions,
    tag: &str,
) -> Result<CaseReport, Divergence> {
    let configs = opts.matrix.configs();
    let base_label = configs[0].label();
    let base = run_config(case, &configs[0], opts.skew, &opts.work_dir, tag);

    // Worker-invariance groups: label-without-workers → first run seen.
    let mut groups: BTreeMap<String, (String, BTreeMap<String, u64>)> = BTreeMap::new();
    groups.insert(
        configs[0].worker_group_key(),
        (base_label.clone(), base.counters.clone()),
    );

    for config in &configs[1..] {
        let label = config.label();
        let run = run_config(case, config, opts.skew, &opts.work_dir, tag);
        if let Some(d) = first_outcome_divergence(case, &base_label, &base, &label, &run) {
            return Err(d);
        }
        let key = config.worker_group_key();
        match groups.get(&key) {
            None => {
                groups.insert(key, (label, run.counters));
            }
            Some((peer_label, peer_counters)) => {
                if let Some(d) =
                    counter_divergence(peer_label, peer_counters, &label, &run.counters)
                {
                    return Err(d);
                }
            }
        }
    }

    let mut report = CaseReport {
        configs: configs.len(),
        reference_mines: 0,
    };
    if opts.check_reference && case.row_count() <= opts.reference_max_rows {
        report.reference_mines = reference_pass(case, &base_label, &base)?;
    }
    Ok(report)
}

/// Run just two configurations and report their first disagreement —
/// the cheap pair oracle the shrinker uses once a full-matrix run has
/// identified *which* configuration diverges. When the two differ only
/// in worker count, telemetry counters are compared too.
pub fn diverges_between(
    case: &FuzzCase,
    a: &Config,
    b: &Config,
    skew: Skew,
    work_dir: &Path,
    tag: &str,
) -> Option<Divergence> {
    let ra = run_config(case, a, skew, work_dir, tag);
    let rb = run_config(case, b, skew, work_dir, tag);
    let (la, lb) = (a.label(), b.label());
    if let Some(d) = first_outcome_divergence(case, &la, &ra, &lb, &rb) {
        return Some(d);
    }
    if a.worker_group_key() == b.worker_group_key() {
        if let Some(d) = counter_divergence(&la, &ra.counters, &lb, &rb.counters) {
            return Some(d);
        }
    }
    None
}

/// Run only the baseline configuration and cross-check it against the
/// reference oracle — the pair oracle for shrinking reference-kind
/// divergences. Ungated by case size: the caller only shrinks, so the
/// case never grows past what a full run already accepted.
pub fn diverges_from_reference(case: &FuzzCase, work_dir: &Path, tag: &str) -> Option<Divergence> {
    let config = Config::baseline();
    let run = run_config(case, &config, Skew::None, work_dir, tag);
    reference_pass(case, &config.label(), &run).err()
}

/// Find the matrix [`Config`] whose label matches a divergence report
/// (used to rebuild the pair oracle from a stored repro header).
pub fn config_by_label(matrix: Matrix, label: &str) -> Option<Config> {
    matrix.configs().into_iter().find(|c| c.label() == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matrix_is_the_cross_product() {
        let configs = Matrix::Full.configs();
        assert_eq!(configs.len(), 2 * 2 * 3 * 3 * 2 * 2 * 2 * 2 * 2);
        assert_eq!(configs[0], Config::baseline());
        let labels: std::collections::BTreeSet<String> =
            configs.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), configs.len(), "labels must be unique");
    }

    #[test]
    fn quick_matrix_covers_every_axis_value() {
        let configs = Matrix::Quick.configs();
        assert_eq!(configs[0], Config::baseline());
        let joined: Vec<String> = configs.iter().map(|c| c.label()).collect();
        for needle in [
            "sqlexec=compiled",
            "indexes=auto",
            "gidset=bitset",
            "gidset=auto",
            "workers=4",
            "preprocache=on",
            "minecache=on",
            "storage=paged",
            "planner=cost",
            "exec=vector",
            "exec=auto",
        ] {
            assert!(
                joined.iter().any(|l| l.contains(needle)),
                "quick matrix misses {needle}"
            );
        }
    }

    #[test]
    fn labels_round_trip_to_configs() {
        for config in Matrix::Full.configs() {
            assert_eq!(config_by_label(Matrix::Full, &config.label()), Some(config));
        }
    }
}
