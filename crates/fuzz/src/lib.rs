//! # tcdm-fuzz — grammar-based differential fuzzing of the mining stack
//!
//! The tightly-coupled architecture's central contract is that every
//! execution strategy computes the *same* relation of rules: compiled or
//! interpreted SQL, indexed or scanned access paths, any gid-set
//! representation, any worker count, preprocess cache on or off, memory
//! or paged storage. The per-feature agreement suites each vary one axis
//! while pinning the rest; this crate varies **all of them at once**:
//!
//! * [`grammar`] generates random schemas + data (seeded through
//!   `datagen::rng`) and random well-typed statements — DDL, DML,
//!   `SELECT`s with joins / `GROUP BY` / set operations / subqueries,
//!   and full MINE RULE statements spanning every statement class;
//! * [`matrix`] executes each generated case across the cross-product of
//!   execution knobs, asserting bit-identical results against a pinned
//!   baseline configuration and (on small cases) against the brute-force
//!   [`minerule::reference`] oracle, with telemetry-invariance checks
//!   piggybacked on the same runs;
//! * [`shrink`] minimises a failing case by deleting rows, statements
//!   and clauses while the divergence still reproduces;
//! * [`repro`] serialises cases to self-contained repro files that the
//!   `tcdm-fuzz` binary (and `tests/fuzz_corpus.rs`) replay.
//!
//! See `docs/FUZZING.md` for the operational tour.

pub mod grammar;
pub mod matrix;
pub mod repro;
pub mod shrink;

/// One table of a case: its `CREATE TABLE` statement plus the rendered
/// row tuples. Rows are kept separate from the DDL so the shrinker can
/// delete them individually and the matrix runner can insert them in one
/// multi-row statement (one WAL commit under the paged backend).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table name, as spelled in `create`.
    pub name: String,
    /// The full `CREATE TABLE name (...)` statement, single-line.
    pub create: String,
    /// Rendered value tuples, e.g. `(1, 'it3', DATE '1995-03-02')`.
    pub rows: Vec<String>,
}

impl TableDef {
    /// The `INSERT INTO <name> VALUES t1, t2, ...` statement loading
    /// every row, or `None` for an empty table.
    pub fn insert_statement(&self) -> Option<String> {
        if self.rows.is_empty() {
            return None;
        }
        Some(format!(
            "INSERT INTO {} VALUES {}",
            self.name,
            self.rows.join(", ")
        ))
    }
}

/// One checked operation of a case, executed in order on every
/// configuration's database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A mutating statement (INSERT / UPDATE / DELETE / CREATE TABLE AS):
    /// executed on every configuration, success-or-error compared.
    Dml(String),
    /// A SELECT whose result relation (order-insensitive) or error is
    /// compared across configurations.
    Query(String),
    /// A MINE RULE statement whose decoded rule set (bit-exact) or error
    /// is compared across configurations, and against the reference
    /// oracle on small cases.
    Mine(String),
}

impl Op {
    /// The statement text, whatever the kind.
    pub fn text(&self) -> &str {
        match self {
            Op::Dml(s) | Op::Query(s) | Op::Mine(s) => s,
        }
    }
}

/// A self-contained fuzz case: schema + data + an ordered list of
/// checked operations. Everything the matrix runner needs, and exactly
/// what repro files serialise.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FuzzCase {
    pub tables: Vec<TableDef>,
    pub ops: Vec<Op>,
}

impl FuzzCase {
    /// Total data rows across all tables (the size the shrinker minimises
    /// and the reference-oracle gate measures).
    pub fn row_count(&self) -> usize {
        self.tables.iter().map(|t| t.rows.len()).sum()
    }

    /// The setup script: every CREATE TABLE, then one bulk INSERT per
    /// non-empty table.
    pub fn setup_statements(&self) -> Vec<String> {
        let mut out: Vec<String> = self.tables.iter().map(|t| t.create.clone()).collect();
        out.extend(self.tables.iter().filter_map(|t| t.insert_statement()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_orders_creates_before_inserts() {
        let case = FuzzCase {
            tables: vec![
                TableDef {
                    name: "a".into(),
                    create: "CREATE TABLE a (x INT)".into(),
                    rows: vec!["(1)".into(), "(2)".into()],
                },
                TableDef {
                    name: "b".into(),
                    create: "CREATE TABLE b (y INT)".into(),
                    rows: vec![],
                },
            ],
            ops: vec![Op::Query("SELECT x FROM a".into())],
        };
        let setup = case.setup_statements();
        assert_eq!(setup.len(), 3, "two creates + one bulk insert");
        assert_eq!(setup[2], "INSERT INTO a VALUES (1), (2)");
        assert_eq!(case.row_count(), 2);
    }
}
