//! Case minimisation: greedily delete operations, rows, tables and
//! MINE RULE clauses while the divergence keeps reproducing.
//!
//! The shrinker is oracle-agnostic — it only needs a predicate "does
//! this smaller case still diverge?". The driver builds that predicate
//! from a cheap two-configuration run (see
//! [`crate::matrix::diverges_between`]), so shrinking never pays for the
//! full matrix.

use minerule::{parse_mine_rule, CardMax, CardSpec, MineRuleStatement};

use crate::{FuzzCase, Op};

/// Minimise `case` under `reproduces` (which must hold for `case`
/// itself). Runs deletion passes to a fixpoint: drop operations, drop
/// whole tables, delete rows in halving chunks then singly, and strip
/// optional clauses / tighten cardinalities of MINE RULE statements.
/// Greedy and deterministic; every accepted step keeps the predicate
/// true, so the result still reproduces.
pub fn shrink(case: &FuzzCase, reproduces: &mut dyn FnMut(&FuzzCase) -> bool) -> FuzzCase {
    let mut best = case.clone();
    loop {
        let before = size_of(&best);
        drop_ops(&mut best, reproduces);
        drop_tables(&mut best, reproduces);
        drop_rows(&mut best, reproduces);
        simplify_mines(&mut best, reproduces);
        if size_of(&best) >= before {
            return best;
        }
    }
}

/// The quantity shrinking minimises: rows + ops + per-mine clause count.
fn size_of(case: &FuzzCase) -> usize {
    let clauses: usize = case
        .ops
        .iter()
        .filter_map(|op| match op {
            Op::Mine(s) => parse_mine_rule(s).ok().map(|m| clause_count(&m)),
            _ => None,
        })
        .sum();
    case.row_count() + case.ops.len() + case.tables.len() + clauses
}

fn clause_count(m: &MineRuleStatement) -> usize {
    [
        m.mining_cond.is_some(),
        m.source_cond.is_some(),
        m.group_cond.is_some(),
        !m.cluster_by.is_empty(),
        m.cluster_cond.is_some(),
    ]
    .iter()
    .filter(|b| **b)
    .count()
}

/// Try removing each op, last to first (later ops depend on earlier
/// state, never the reverse, so tail deletions are likeliest to stick).
fn drop_ops(case: &mut FuzzCase, reproduces: &mut dyn FnMut(&FuzzCase) -> bool) {
    let mut i = case.ops.len();
    while i > 0 {
        i -= 1;
        let mut candidate = case.clone();
        candidate.ops.remove(i);
        if reproduces(&candidate) {
            *case = candidate;
        }
    }
}

fn drop_tables(case: &mut FuzzCase, reproduces: &mut dyn FnMut(&FuzzCase) -> bool) {
    let mut i = case.tables.len();
    while i > 0 {
        i -= 1;
        let mut candidate = case.clone();
        candidate.tables.remove(i);
        if reproduces(&candidate) {
            *case = candidate;
        }
    }
}

/// Delta-debugging-style row deletion: per table, try removing chunks of
/// half the rows, then quarters, ... down to single rows.
fn drop_rows(case: &mut FuzzCase, reproduces: &mut dyn FnMut(&FuzzCase) -> bool) {
    for t in 0..case.tables.len() {
        let mut chunk = (case.tables[t].rows.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < case.tables[t].rows.len() {
                let end = (start + chunk).min(case.tables[t].rows.len());
                let mut candidate = case.clone();
                candidate.tables[t].rows.drain(start..end);
                if reproduces(&candidate) {
                    *case = candidate;
                    // Same start now holds the next chunk.
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }
}

/// Strip optional clauses and tighten cardinalities of every MINE RULE
/// statement, one mutation at a time. Statements are mutated through the
/// parsed AST and re-rendered via its `Display` (which round-trips), so
/// the shrunk statement is always well-formed.
fn simplify_mines(case: &mut FuzzCase, reproduces: &mut dyn FnMut(&FuzzCase) -> bool) {
    for i in 0..case.ops.len() {
        // Variants are one step from the *current* statement, so after an
        // accepted step we re-parse and try again from the smaller form.
        while let Op::Mine(text) = &case.ops[i] {
            let Ok(stmt) = parse_mine_rule(text) else {
                break;
            };
            let mut progressed = false;
            for variant in clause_variants(&stmt) {
                let rendered = variant.to_string();
                if rendered == *case.ops[i].text() {
                    continue;
                }
                let mut candidate = case.clone();
                candidate.ops[i] = Op::Mine(rendered);
                if reproduces(&candidate) {
                    *case = candidate;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
    }
}

/// One-step simplifications of a statement, most aggressive first.
fn clause_variants(stmt: &MineRuleStatement) -> Vec<MineRuleStatement> {
    let mut out = Vec::new();
    if stmt.mining_cond.is_some() {
        let mut v = stmt.clone();
        v.mining_cond = None;
        out.push(v);
    }
    if stmt.source_cond.is_some() {
        let mut v = stmt.clone();
        v.source_cond = None;
        out.push(v);
    }
    if stmt.group_cond.is_some() {
        let mut v = stmt.clone();
        v.group_cond = None;
        out.push(v);
    }
    if !stmt.cluster_by.is_empty() {
        let mut v = stmt.clone();
        v.cluster_by.clear();
        v.cluster_cond = None;
        out.push(v);
    }
    if stmt.cluster_cond.is_some() {
        let mut v = stmt.clone();
        v.cluster_cond = None;
        out.push(v);
    }
    let tight = CardSpec {
        min: 1,
        max: CardMax::Fixed(1),
    };
    if stmt.body.card != tight {
        let mut v = stmt.clone();
        v.body.card = tight;
        out.push(v);
    }
    if stmt.head.card != tight {
        let mut v = stmt.clone();
        v.head.card = tight;
        out.push(v);
    }
    if stmt.body.schema.len() > 1 {
        let mut v = stmt.clone();
        v.body.schema.truncate(1);
        out.push(v);
    }
    if stmt.head.schema.len() > 1 {
        let mut v = stmt.clone();
        v.head.schema.truncate(1);
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TableDef;

    fn case_with_rows(rows: &[i64]) -> FuzzCase {
        FuzzCase {
            tables: vec![TableDef {
                name: "t".into(),
                create: "CREATE TABLE t (x INT)".into(),
                rows: rows.iter().map(|x| format!("({x})")).collect(),
            }],
            ops: vec![
                Op::Query("SELECT x FROM t".into()),
                Op::Query("SELECT x + 1 FROM t".into()),
                Op::Dml("DELETE FROM t WHERE x = 0".into()),
            ],
        }
    }

    #[test]
    fn shrinks_to_the_single_guilty_row() {
        // The "divergence" reproduces whenever row 42 and op 0 survive.
        let case = case_with_rows(&[1, 2, 3, 42, 5, 6, 7, 8]);
        let mut oracle = |c: &FuzzCase| {
            c.tables
                .first()
                .is_some_and(|t| t.rows.iter().any(|r| r == "(42)"))
                && c.ops.iter().any(|o| o.text() == "SELECT x FROM t")
        };
        assert!(oracle(&case), "precondition: the full case reproduces");
        let small = shrink(&case, &mut oracle);
        assert!(oracle(&small), "shrunk case must still reproduce");
        assert_eq!(small.row_count(), 1, "exactly the guilty row survives");
        assert_eq!(small.tables[0].rows, vec!["(42)".to_string()]);
        assert_eq!(small.ops.len(), 1, "only the guilty op survives");
    }

    #[test]
    fn shrinking_never_accepts_a_non_reproducing_case() {
        let case = case_with_rows(&[1, 2, 3, 4]);
        // Oracle: reproduces only while at least 3 rows remain.
        let mut oracle = |c: &FuzzCase| c.row_count() >= 3;
        let small = shrink(&case, &mut oracle);
        assert!(small.row_count() >= 3);
        assert_eq!(small.row_count(), 3, "greedy pass reaches the floor");
    }

    #[test]
    fn strips_optional_mine_clauses() {
        let mine = "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..2 item AS HEAD, \
                    SUPPORT, CONFIDENCE WHERE BODY.price > HEAD.price FROM Purchase \
                    WHERE price < 100 GROUP BY customer HAVING COUNT(item) >= 1 \
                    CLUSTER BY date HAVING BODY.date < HEAD.date \
                    EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.1";
        let case = FuzzCase {
            tables: vec![],
            ops: vec![Op::Mine(mine.into())],
        };
        // Oracle: any MINE RULE statement over Purchase reproduces.
        let mut oracle = |c: &FuzzCase| {
            c.ops
                .iter()
                .any(|o| matches!(o, Op::Mine(s) if s.contains("FROM Purchase")))
        };
        let small = shrink(&case, &mut oracle);
        let Op::Mine(text) = &small.ops[0] else {
            panic!("mine op must survive")
        };
        let stmt = parse_mine_rule(text).expect("shrunk statement still parses");
        assert!(stmt.mining_cond.is_none());
        assert!(stmt.source_cond.is_none());
        assert!(stmt.group_cond.is_none());
        assert!(stmt.cluster_by.is_empty() && stmt.cluster_cond.is_none());
        assert_eq!(
            stmt.body.card,
            CardSpec {
                min: 1,
                max: CardMax::Fixed(1)
            }
        );
    }
}
