//! `tcdm-fuzz` — drive the grammar-based differential fuzzer.
//!
//! Generate mode (default): produce `--cases` random cases from
//! `--seed`, run each across the configuration matrix, and on the first
//! divergence shrink it with the cheap pair oracle and write a
//! self-contained repro file under `--out`.
//!
//! Replay mode (`--replay FILE...`): parse repro files and run each
//! across the matrix, exiting non-zero if any still diverges.
//!
//! See `docs/FUZZING.md` for the full tour.

use std::path::PathBuf;
use std::process::ExitCode;

use tcdm_fuzz::grammar::{gen_case, GenConfig};
use tcdm_fuzz::matrix::{
    config_by_label, diverges_between, diverges_from_reference, run_case, Config, Divergence,
    DivergenceKind, Matrix, MatrixOptions, Skew,
};
use tcdm_fuzz::repro::{parse_repro, to_repro, ReproHeader};
use tcdm_fuzz::shrink::shrink;
use tcdm_fuzz::FuzzCase;

struct Args {
    seed: u64,
    cases: u64,
    max_rows: usize,
    matrix: Matrix,
    out: PathBuf,
    replay: Vec<PathBuf>,
    inject: Skew,
    reference_max_rows: usize,
    work_dir: Option<PathBuf>,
    emit_corpus: Option<PathBuf>,
}

const USAGE: &str = "\
tcdm-fuzz — grammar-based differential fuzzer for the mining stack

USAGE:
    tcdm-fuzz [OPTIONS]

OPTIONS:
    --seed <N>                RNG seed for case generation (default 7)
    --cases <N>               number of cases to generate (default 64)
    --max-rows <N>            row budget per case (default 36)
    --matrix <quick|full>     knob matrix to run (default full)
    --out <DIR>               where shrunk repro files go (default fuzz_repros)
    --replay <FILE>           replay a repro file instead of generating
                              (repeatable)
    --inject <SKEW>           inject a deliberate fault to prove the harness
                              catches it: none | compiled-drop-row |
                              bitset-drop-rule (default none)
    --reference-max-rows <N>  reference-oracle gate (default 40)
    --work-dir <DIR>          scratch dir for paged-storage runs
                              (default: /dev/shm or the system temp dir)
    --emit-corpus <DIR>       also write every *passing* generated case as a
                              corpus repro file into DIR
    -h, --help                this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 7,
        cases: 64,
        max_rows: 36,
        matrix: Matrix::Full,
        out: PathBuf::from("fuzz_repros"),
        replay: Vec::new(),
        inject: Skew::None,
        reference_max_rows: 40,
        work_dir: None,
        emit_corpus: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = parse_num(&value("--seed")?)?,
            "--cases" => args.cases = parse_num(&value("--cases")?)?,
            "--max-rows" => args.max_rows = parse_num(&value("--max-rows")?)? as usize,
            "--matrix" => {
                let v = value("--matrix")?;
                args.matrix = Matrix::parse(&v)
                    .ok_or_else(|| format!("unknown matrix `{v}` (quick | full)"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--replay" => args.replay.push(PathBuf::from(value("--replay")?)),
            "--inject" => {
                let v = value("--inject")?;
                args.inject = Skew::parse(&v).ok_or_else(|| {
                    format!("unknown skew `{v}` (none | compiled-drop-row | bitset-drop-rule)")
                })?;
            }
            "--reference-max-rows" => {
                args.reference_max_rows = parse_num(&value("--reference-max-rows")?)? as usize
            }
            "--work-dir" => args.work_dir = Some(PathBuf::from(value("--work-dir")?)),
            "--emit-corpus" => args.emit_corpus = Some(PathBuf::from(value("--emit-corpus")?)),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("not a number: `{s}`"))
}

/// Shrink a diverging case with the cheapest oracle that still
/// reproduces the original divergence kind.
fn shrink_divergence(case: &FuzzCase, div: &Divergence, opts: &MatrixOptions) -> FuzzCase {
    match div.kind {
        DivergenceKind::Reference => {
            let mut oracle =
                |c: &FuzzCase| diverges_from_reference(c, &opts.work_dir, "shrink").is_some();
            shrink(case, &mut oracle)
        }
        DivergenceKind::Matrix | DivergenceKind::Telemetry => {
            let a = config_by_label(opts.matrix, &div.against).unwrap_or_else(Config::baseline);
            let Some(b) = config_by_label(opts.matrix, &div.config) else {
                return case.clone();
            };
            let mut oracle = |c: &FuzzCase| {
                diverges_between(c, &a, &b, opts.skew, &opts.work_dir, "shrink").is_some()
            };
            shrink(case, &mut oracle)
        }
    }
}

fn write_repro(dir: &PathBuf, name: &str, case: &FuzzCase, header: &ReproHeader) -> PathBuf {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    let path = dir.join(name);
    std::fs::write(&path, to_repro(case, header))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    path
}

fn skew_name(s: Skew) -> Option<String> {
    match s {
        Skew::None => None,
        Skew::CompiledDropsLastRow => Some("compiled-drop-row".into()),
        Skew::BitsetDropsLastRule => Some("bitset-drop-rule".into()),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tcdm-fuzz: {e}");
            return ExitCode::from(2);
        }
    };

    let opts = MatrixOptions {
        matrix: args.matrix,
        check_reference: true,
        reference_max_rows: args.reference_max_rows,
        skew: args.inject,
        work_dir: args
            .work_dir
            .clone()
            .unwrap_or_else(tcdm_fuzz::matrix::default_work_dir),
    };
    std::fs::create_dir_all(&opts.work_dir)
        .unwrap_or_else(|e| panic!("cannot create work dir {}: {e}", opts.work_dir.display()));
    let configs = opts.matrix.configs().len();

    let code = if args.replay.is_empty() {
        run_generate(&args, &opts, configs)
    } else {
        run_replay(&args, &opts, configs)
    };
    let _ = std::fs::remove_dir_all(&opts.work_dir);
    code
}

fn run_generate(args: &Args, opts: &MatrixOptions, configs: usize) -> ExitCode {
    println!(
        "tcdm-fuzz: seed={} cases={} max-rows={} matrix={:?} ({configs} configs){}",
        args.seed,
        args.cases,
        args.max_rows,
        opts.matrix,
        match opts.skew {
            Skew::None => String::new(),
            s => format!(" inject={}", skew_name(s).unwrap()),
        }
    );
    let gen_cfg = GenConfig {
        max_rows: args.max_rows,
    };
    let mut reference_mines = 0usize;
    for i in 0..args.cases {
        let case = gen_case(args.seed, i, &gen_cfg);
        match run_case(&case, opts, &format!("c{i}")) {
            Ok(report) => {
                reference_mines += report.reference_mines;
                if (i + 1) % 8 == 0 || i + 1 == args.cases {
                    println!(
                        "  case {}/{}: ok ({} rows, {} ops)",
                        i + 1,
                        args.cases,
                        case.row_count(),
                        case.ops.len()
                    );
                }
                if let Some(dir) = &args.emit_corpus {
                    let header = ReproHeader {
                        note: Some(format!("seed={} case={i} passing corpus entry", args.seed)),
                        ..ReproHeader::default()
                    };
                    let name = format!("seed{}_case{i}.repro", args.seed);
                    write_repro(dir, &name, &case, &header);
                }
            }
            Err(div) => {
                println!("  case {}/{}: DIVERGED", i + 1, args.cases);
                println!("{div}");
                println!(
                    "  shrinking ({} rows, {} ops)...",
                    case.row_count(),
                    case.ops.len()
                );
                let small = shrink_divergence(&case, &div, opts);
                println!(
                    "  shrunk to {} rows, {} ops",
                    small.row_count(),
                    small.ops.len()
                );
                let header = ReproHeader {
                    kind: Some(div.kind.name().to_string()),
                    config: Some(div.config.clone()),
                    against: Some(div.against.clone()),
                    skew: skew_name(opts.skew),
                    note: Some(format!("seed={} case={i}", args.seed)),
                };
                let name = format!("diverged_seed{}_case{i}.repro", args.seed);
                let path = write_repro(&args.out, &name, &small, &header);
                println!("  repro written to {}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "tcdm-fuzz: {} cases x {configs} configs clean ({reference_mines} mine statements \
         cross-checked against the reference oracle)",
        args.cases
    );
    ExitCode::SUCCESS
}

fn run_replay(args: &Args, opts: &MatrixOptions, configs: usize) -> ExitCode {
    let mut failed = false;
    for (i, path) in args.replay.iter().enumerate() {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tcdm-fuzz: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let repro = match parse_repro(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("tcdm-fuzz: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        match run_case(&repro.case, opts, &format!("r{i}")) {
            Ok(_) => println!("replay {}: clean across {configs} configs", path.display()),
            Err(div) => {
                failed = true;
                println!("replay {}: still diverges", path.display());
                println!("{div}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
