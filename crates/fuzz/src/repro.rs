//! Self-contained repro files.
//!
//! A repro is a line-oriented text file holding everything needed to
//! replay a case: metadata headers, the schema, the data rows and the
//! checked operations. The format is deliberately trivial — one
//! statement per line, no quoting or escapes — because every statement
//! the grammar emits (and every statement the shrinker re-renders) is a
//! single line of SQL already.
//!
//! ```text
//! #! tcdm-fuzz repro v1
//! #! kind: matrix
//! #! config: sqlexec=compiled indexes=off ... storage=memory
//! #! against: sqlexec=interpreted indexes=off ... storage=memory
//! #! note: seed=7 case=12
//! table Purchase CREATE TABLE Purchase (tr INT, ...)
//! row Purchase (1, 'c0', 'it3', DATE '1995-03-01', 120, 1)
//! dml UPDATE Purchase SET qty = qty + 1 WHERE tr <= 3
//! query SELECT item FROM Purchase WHERE price > 100
//! mine MINE RULE R0 AS SELECT DISTINCT ...
//! ```
//!
//! Lines starting `#` (but not `#!`) are free comments and ignored.

use crate::{FuzzCase, Op, TableDef};

/// Magic first line of every repro file.
pub const MAGIC: &str = "#! tcdm-fuzz repro v1";

/// Metadata carried in `#!` headers. All fields optional: a corpus entry
/// typically records only `note`, a shrunk divergence all of them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReproHeader {
    /// Divergence kind (`matrix` | `reference` | `telemetry`).
    pub kind: Option<String>,
    /// Label of the diverging configuration.
    pub config: Option<String>,
    /// What it diverged against (a configuration label or `reference`).
    pub against: Option<String>,
    /// The injected skew that produced the divergence, if any.
    pub skew: Option<String>,
    /// Free-form provenance (`seed=7 case=12`).
    pub note: Option<String>,
}

/// A parsed repro file: metadata + the replayable case.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Repro {
    pub header: ReproHeader,
    pub case: FuzzCase,
}

/// Serialise a case (plus metadata) into the repro format.
pub fn to_repro(case: &FuzzCase, header: &ReproHeader) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    let mut push_header = |key: &str, value: &Option<String>| {
        if let Some(v) = value {
            out.push_str(&format!("#! {key}: {v}\n"));
        }
    };
    push_header("kind", &header.kind);
    push_header("config", &header.config);
    push_header("against", &header.against);
    push_header("skew", &header.skew);
    push_header("note", &header.note);
    for t in &case.tables {
        out.push_str(&format!("table {} {}\n", t.name, t.create));
        for row in &t.rows {
            out.push_str(&format!("row {} {row}\n", t.name));
        }
    }
    for op in &case.ops {
        let tag = match op {
            Op::Dml(_) => "dml",
            Op::Query(_) => "query",
            Op::Mine(_) => "mine",
        };
        out.push_str(&format!("{tag} {}\n", op.text()));
    }
    out
}

/// Parse a repro file. Errors carry the offending line number.
pub fn parse_repro(text: &str) -> Result<Repro, String> {
    let mut repro = Repro::default();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = n + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("#!") {
            let rest = rest.trim();
            if rest.starts_with("tcdm-fuzz repro") {
                continue; // magic
            }
            let Some((key, value)) = rest.split_once(':') else {
                return Err(format!("line {lineno}: malformed header `{line}`"));
            };
            let value = Some(value.trim().to_string());
            match key.trim() {
                "kind" => repro.header.kind = value,
                "config" => repro.header.config = value,
                "against" => repro.header.against = value,
                "skew" => repro.header.skew = value,
                "note" => repro.header.note = value,
                other => return Err(format!("line {lineno}: unknown header `{other}`")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free comment
        }
        let Some((tag, rest)) = line.split_once(' ') else {
            return Err(format!("line {lineno}: malformed line `{line}`"));
        };
        let rest = rest.trim();
        match tag {
            "table" => {
                let Some((name, create)) = rest.split_once(' ') else {
                    return Err(format!("line {lineno}: `table` needs a name and DDL"));
                };
                repro.case.tables.push(TableDef {
                    name: name.to_string(),
                    create: create.trim().to_string(),
                    rows: Vec::new(),
                });
            }
            "row" => {
                let Some((name, tuple)) = rest.split_once(' ') else {
                    return Err(format!("line {lineno}: `row` needs a table name and tuple"));
                };
                let Some(table) = repro.case.tables.iter_mut().find(|t| t.name == name) else {
                    return Err(format!("line {lineno}: row for undeclared table `{name}`"));
                };
                table.rows.push(tuple.trim().to_string());
            }
            "dml" => repro.case.ops.push(Op::Dml(rest.to_string())),
            "query" => repro.case.ops.push(Op::Query(rest.to_string())),
            "mine" => repro.case.ops.push(Op::Mine(rest.to_string())),
            other => return Err(format!("line {lineno}: unknown tag `{other}`")),
        }
    }
    Ok(repro)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{gen_case, GenConfig};

    #[test]
    fn generated_cases_round_trip() {
        let cfg = GenConfig::default();
        for i in 0..25 {
            let case = gen_case(11, i, &cfg);
            let header = ReproHeader {
                kind: Some("matrix".into()),
                config: Some("sqlexec=compiled".into()),
                against: Some("sqlexec=interpreted".into()),
                skew: None,
                note: Some(format!("seed=11 case={i}")),
            };
            let text = to_repro(&case, &header);
            let parsed = parse_repro(&text).expect("round-trip parse");
            assert_eq!(parsed.case, case, "case {i} round-trips");
            assert_eq!(parsed.header, header, "header {i} round-trips");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!(
            "{MAGIC}\n\n# a human note\ntable t CREATE TABLE t (x INT)\nrow t (1)\n\nquery SELECT x FROM t\n"
        );
        let repro = parse_repro(&text).unwrap();
        assert_eq!(repro.case.tables.len(), 1);
        assert_eq!(repro.case.tables[0].rows, vec!["(1)".to_string()]);
        assert_eq!(repro.case.ops.len(), 1);
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        let err = parse_repro("row t (1)\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_repro("table t CREATE TABLE t (x INT)\nbogus SELECT 1\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
