//! `tcdm` — the interactive shell of the tightly-coupled mining system.
//!
//! The "user support" module of the paper's Figure 3: a front-end that
//! accepts both SQL and MINE RULE statements against one database, with
//! demo loaders and rule viewing. Statements may span multiple lines and
//! end with `;` (a single-line statement needs no terminator).

mod session;

use std::io::{self, BufRead, Write};

use session::{Outcome, Session};

fn main() {
    let mut session = Session::new();

    // Script mode: `tcdm <file>` runs `;`-separated statements from a
    // file and exits.
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = args.first() {
        match std::fs::read_to_string(path) {
            Ok(script) => {
                for statement in script.split(';') {
                    let statement = statement.trim();
                    if statement.is_empty() {
                        continue;
                    }
                    match session.process(statement) {
                        Outcome::Quit => return,
                        Outcome::Output(s) if s.is_empty() => {}
                        Outcome::Output(s) => println!("{s}"),
                    }
                }
            }
            Err(e) => {
                eprintln!("tcdm: cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let stdin = io::stdin();
    let mut stdout = io::stdout();
    let interactive = is_tty();

    if interactive {
        println!("tcdm — tightly-coupled data mining shell (\\help for help)");
    }

    let mut buffer = String::new();
    let mut lines = stdin.lock().lines();
    loop {
        if interactive {
            print!(
                "{}",
                if buffer.is_empty() {
                    "tcdm> "
                } else {
                    "  ... "
                }
            );
            let _ = stdout.flush();
        }
        let Some(Ok(line)) = lines.next() else { break };
        let trimmed = line.trim();
        // Commands and empty lines act immediately; statements accumulate
        // until a terminating `;` or a blank line on a one-liner.
        if buffer.is_empty() && (trimmed.starts_with('\\') || trimmed.is_empty()) {
            match session.process(trimmed) {
                Outcome::Quit => break,
                Outcome::Output(s) if s.is_empty() => {}
                Outcome::Output(s) => println!("{s}"),
            }
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        let complete = trimmed.ends_with(';')
            || (buffer.lines().count() == 1 && !trimmed.is_empty() && !interactive)
            || (interactive && trimmed.ends_with(';'))
            || (interactive && buffer.lines().count() == 1 && !needs_continuation(trimmed));
        if complete {
            let statement = buffer.trim().trim_end_matches(';').to_string();
            buffer.clear();
            if statement.is_empty() {
                continue;
            }
            match session.process(&statement) {
                Outcome::Quit => break,
                Outcome::Output(s) => println!("{s}"),
            }
        }
    }
    // Flush any trailing statement (piped input without a final `;`).
    let tail = buffer.trim().trim_end_matches(';').to_string();
    if !tail.is_empty() {
        if let Outcome::Output(s) = session.process(&tail) {
            println!("{s}");
        }
    }
}

/// A single interactive line continues when it opens a statement that
/// clearly isn't finished (heuristic: unbalanced parentheses).
fn needs_continuation(line: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in line.chars() {
        match c {
            '\'' => in_str = !in_str,
            '(' if !in_str => depth += 1,
            ')' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth > 0
}

#[cfg(unix)]
fn is_tty() -> bool {
    // SAFETY: isatty is async-signal-safe and takes a plain fd.
    unsafe { libc_isatty(0) == 1 }
}

#[cfg(unix)]
extern "C" {
    #[link_name = "isatty"]
    fn libc_isatty(fd: i32) -> i32;
}

#[cfg(not(unix))]
fn is_tty() -> bool {
    false
}
