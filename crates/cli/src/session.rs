//! The interactive session: one database, one mining engine, a command
//! dispatcher. Split from `main.rs` so the whole surface is unit-testable
//! without a terminal.

use std::fmt::Write as _;
use std::time::Instant;

use datagen::{generate_quest, generate_retail, load_quest, QuestConfig, RetailConfig};
use minerule::paper_example::load_purchase_table;
use minerule::{is_mine_rule, MineRuleEngine};
use relational::Database;

/// One `\set` knob: the single source of truth for the `\set` no-arg
/// listing, the `\help` text and the unknown-setting hint, so the three
/// surfaces can never drift apart (asserted in the session tests).
pub struct Knob {
    /// The `\set` name.
    pub name: &'static str,
    /// Value domain shown in help (`on|off`, `<n>`, ...).
    pub domain: &'static str,
    /// One-line description for `\help`.
    pub blurb: &'static str,
}

/// Every `\set` knob the shell understands.
pub const KNOBS: &[Knob] = &[
    Knob {
        name: "workers",
        domain: "<n>",
        blurb: "mining executor threads (same rules, faster core)",
    },
    Knob {
        name: "telemetry",
        domain: "on|off",
        blurb: "toggle metric recording (rules identical either way)",
    },
    Knob {
        name: "gidset",
        domain: "list|bitset|auto",
        blurb: "pin the gid-set representation",
    },
    Knob {
        name: "sqlexec",
        domain: "compiled|interpreted|auto",
        blurb: "pin SQL expression execution",
    },
    Knob {
        name: "exec",
        domain: "vector|row|auto",
        blurb: "pin batch (vectorized) SQL execution",
    },
    Knob {
        name: "preprocache",
        domain: "on|off",
        blurb: "preprocess artifact cache (rules identical either way)",
    },
    Knob {
        name: "minecache",
        domain: "on|off",
        blurb: "mined-result cache for refined reruns (rules identical either way)",
    },
    Knob {
        name: "indexes",
        domain: "auto|off",
        blurb: "relational hash-index policy (results identical either way)",
    },
    Knob {
        name: "storage",
        domain: "memory|paged [dir]",
        blurb: "storage backend (paged adds crash-safe durability; same results)",
    },
    Knob {
        name: "planner",
        domain: "cost|naive",
        blurb:
            "query planner (cost plans from statistics and fuses preprocess steps; same results)",
    },
];

fn on_off(state: bool) -> &'static str {
    if state {
        "on"
    } else {
        "off"
    }
}

/// What a processed input line produced.
#[derive(Debug, PartialEq)]
pub enum Outcome {
    /// Text to print.
    Output(String),
    /// The user asked to leave.
    Quit,
}

/// An interactive session over one in-memory database.
pub struct Session {
    db: Database,
    engine: MineRuleEngine,
    /// Print wall-clock timings after each statement.
    timing: bool,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A fresh session with an empty database.
    pub fn new() -> Session {
        Session {
            db: Database::new(),
            engine: MineRuleEngine::new(),
            timing: false,
        }
    }

    /// Process one input line (a `\`-command, a SQL statement or a MINE
    /// RULE statement) and return what to print.
    pub fn process(&mut self, line: &str) -> Outcome {
        let line = line.trim();
        if line.is_empty() {
            return Outcome::Output(String::new());
        }
        if let Some(cmd) = line.strip_prefix('\\') {
            return self.command(cmd);
        }
        let started = Instant::now();
        let result = if is_mine_rule(line) {
            self.run_mine_rule(line)
        } else {
            self.run_sql(line)
        };
        let mut out = match result {
            Ok(text) => text,
            Err(message) => format!("error: {message}"),
        };
        if self.timing {
            let _ = write!(out, "\n({:.2} ms)", started.elapsed().as_secs_f64() * 1e3);
        }
        Outcome::Output(out)
    }

    fn run_sql(&mut self, sql: &str) -> Result<String, String> {
        let outcome = self.db.execute(sql).map_err(|e| e.to_string())?;
        Ok(match outcome.result {
            Some(rs) => rs.to_string(),
            None => format!("ok ({} rows affected)", outcome.rows_affected),
        })
    }

    fn run_mine_rule(&mut self, text: &str) -> Result<String, String> {
        let outcome = self
            .engine
            .execute(&mut self.db, text)
            .map_err(|e| e.to_string())?;
        let mut out = format!(
            "mined {} rules ({} class, directives {})\n",
            outcome.rules.len(),
            outcome.translation.class,
            outcome.translation.directives
        );
        for rule in outcome.rules.iter().take(25) {
            let _ = writeln!(out, "  {}", rule.display());
        }
        if outcome.rules.len() > 25 {
            let _ = writeln!(out, "  ... ({} more)", outcome.rules.len() - 25);
        }
        let _ = write!(
            out,
            "output tables: {out_t}, {out_t}_Bodies, {out_t}_Heads",
            out_t = outcome.translation.stmt.output_table
        );
        Ok(out)
    }

    /// The current value of a `\set` knob, for the no-arg listing.
    fn knob_value(&self, name: &str) -> String {
        match name {
            "workers" => self.engine.core.workers.to_string(),
            "telemetry" => on_off(self.engine.telemetry_enabled()).to_string(),
            "gidset" => self.engine.core.gidset.to_string(),
            "sqlexec" => self.engine.sqlexec.to_string(),
            "exec" => self.engine.exec.to_string(),
            "preprocache" => on_off(self.engine.preprocache_enabled()).to_string(),
            "minecache" => on_off(self.engine.minecache_enabled()).to_string(),
            "indexes" => self.db.index_policy().to_string(),
            "storage" => self.db.storage().to_string(),
            "planner" => self.engine.planner.to_string(),
            other => format!("<unknown knob '{other}'>"),
        }
    }

    /// Pretty-print a MINE RULE output-table triple, strongest rules first.
    fn show_rules(&mut self, table: &str) -> Outcome {
        let sql = format!(
            "SELECT r.BodyId, r.HeadId, b.SUPPORT, b.CONFIDENCE \
             FROM {table} r, {table} b \
             WHERE r.BodyId = b.BodyId AND r.HeadId = b.HeadId LIMIT 1"
        );
        // Probe that the table has the rule shape at all.
        if self.db.query(&sql).is_err() {
            return Outcome::Output(format!("error: '{table}' is not a MINE RULE output table"));
        }
        let q = format!(
            "SELECT r.BodyId, r.HeadId, r.SUPPORT, r.CONFIDENCE FROM {table} r \
             ORDER BY r.CONFIDENCE DESC, r.SUPPORT DESC LIMIT 20"
        );
        let rules = match self.db.query(&q) {
            Ok(rs) => rs,
            Err(e) => return Outcome::Output(format!("error: {e}")),
        };
        let mut out = String::new();
        for row in rules.rows() {
            let body_id = &row[0];
            let head_id = &row[1];
            let mut items = |side: &str, id: &relational::Value| -> String {
                let q = format!(
                    "SELECT * FROM {table}_{side} WHERE {col} = {id}",
                    col = if side == "Bodies" { "BodyId" } else { "HeadId" }
                );
                match self.db.query(&q) {
                    Ok(rs) => {
                        let mut items: Vec<String> = rs
                            .rows()
                            .iter()
                            .map(|r| {
                                r.iter()
                                    .skip(1)
                                    .map(|v| v.to_string())
                                    .collect::<Vec<_>>()
                                    .join("|")
                            })
                            .collect();
                        items.sort();
                        items.join(", ")
                    }
                    Err(_) => format!("#{id}"),
                }
            };
            let _ = writeln!(
                out,
                "  {{{}}} => {{{}}}  (s={}, c={})",
                items("Bodies", body_id),
                items("Heads", head_id),
                row[2],
                row[3]
            );
        }
        if out.is_empty() {
            out = "no rules".to_string();
        }
        Outcome::Output(out.trim_end().to_string())
    }

    fn command(&mut self, cmd: &str) -> Outcome {
        let mut words = cmd.split_whitespace();
        match words.next().unwrap_or("") {
            "q" | "quit" | "exit" => Outcome::Quit,
            "help" | "h" | "?" => Outcome::Output(help_text()),
            "tables" | "dt" => {
                let names = self.db.catalog().table_names();
                if names.is_empty() {
                    Outcome::Output("no tables".into())
                } else {
                    Outcome::Output(names.join("\n"))
                }
            }
            "schema" | "d" => match words.next() {
                None => Outcome::Output("usage: \\schema <table>".into()),
                Some(name) => match self.db.catalog().table_schema(name) {
                    Err(e) => Outcome::Output(format!("error: {e}")),
                    Ok(schema) => {
                        let mut out = String::new();
                        for c in schema.columns() {
                            let _ = writeln!(out, "{} {}", c.name, c.dtype);
                        }
                        Outcome::Output(out.trim_end().to_string())
                    }
                },
            },
            "timing" => {
                self.timing = !self.timing;
                Outcome::Output(format!(
                    "timing is {}",
                    if self.timing { "on" } else { "off" }
                ))
            }
            "algorithm" => match words.next() {
                None => Outcome::Output(format!(
                    "current algorithm: {} (choose: {})",
                    self.engine.core.algorithm,
                    minerule::algo::POOL_NAMES.join(", ")
                )),
                Some(name) => {
                    if minerule::algo::by_name(name).is_some() {
                        self.engine.core.algorithm = name.to_string();
                        Outcome::Output(format!("algorithm set to {name}"))
                    } else {
                        Outcome::Output(format!(
                            "unknown algorithm '{name}'; the pool contains: {}",
                            minerule::algo::POOL_NAMES.join(", ")
                        ))
                    }
                }
            },
            "set" => match (words.next(), words.next()) {
                (Some("workers"), Some(n)) => match n.parse::<usize>() {
                    // Zero is rejected with the same user-facing shape as
                    // the unknown-algorithm error: the engine's own typed
                    // error, stated with the valid domain.
                    Ok(0) => Outcome::Output(
                        minerule::MineError::InvalidWorkerCount { value: 0 }.to_string(),
                    ),
                    Ok(n) => {
                        self.engine.core.workers = n;
                        Outcome::Output(format!("workers set to {n}"))
                    }
                    Err(_) => Outcome::Output(format!("'{n}' is not a valid worker count (min 1)")),
                },
                (Some("workers"), None) => Outcome::Output(format!(
                    "workers: {} (mining executor threads; rules are identical for any value)",
                    self.engine.core.workers
                )),
                (Some("telemetry"), Some(state)) => match state {
                    "on" | "off" => {
                        self.engine.set_telemetry_enabled(state == "on");
                        Outcome::Output(format!("telemetry is {state}"))
                    }
                    other => Outcome::Output(format!(
                        "'{other}' is not a valid telemetry state (on | off)"
                    )),
                },
                (Some("telemetry"), None) => Outcome::Output(format!(
                    "telemetry: {} (metric recording; mined rules are identical either way)",
                    if self.engine.telemetry_enabled() {
                        "on"
                    } else {
                        "off"
                    }
                )),
                (Some("gidset"), Some(name)) => match minerule::algo::GidSetRepr::parse(name) {
                    // Bad names get the engine's own typed error, shaped
                    // like the unknown-algorithm / zero-workers cases.
                    Ok(repr) => {
                        self.engine.core.gidset = repr;
                        Outcome::Output(format!("gidset representation set to {repr}"))
                    }
                    Err(e) => Outcome::Output(e.to_string()),
                },
                (Some("gidset"), None) => Outcome::Output(format!(
                    "gidset: {} (gid-set representation: list | bitset | auto; \
                     rules are identical for any choice)",
                    self.engine.core.gidset
                )),
                (Some("sqlexec"), Some(name)) => match minerule::parse_sqlexec(name) {
                    // Bad names get the engine's own typed error, shaped
                    // like the unknown-algorithm / zero-workers cases.
                    Ok(mode) => {
                        // Mining runs stamp the database from the engine;
                        // plain SQL goes straight to the database, so set
                        // both here.
                        self.engine.sqlexec = mode;
                        self.db.set_sqlexec(mode);
                        Outcome::Output(format!("sql executor set to {mode}"))
                    }
                    Err(e) => Outcome::Output(e.to_string()),
                },
                (Some("sqlexec"), None) => Outcome::Output(format!(
                    "sqlexec: {} (expression execution: compiled | interpreted | auto; \
                     results are identical for any choice)",
                    self.engine.sqlexec
                )),
                (Some("exec"), Some(name)) => match minerule::parse_exec(name) {
                    // Bad names get the engine's own typed error, shaped
                    // like the unknown-algorithm / zero-workers cases.
                    Ok(mode) => {
                        // Mining runs stamp the database from the engine;
                        // plain SQL goes straight to the database, so set
                        // both here.
                        self.engine.exec = mode;
                        self.db.set_exec(mode);
                        Outcome::Output(format!("batch executor set to {mode}"))
                    }
                    Err(e) => Outcome::Output(e.to_string()),
                },
                (Some("exec"), None) => Outcome::Output(format!(
                    "exec: {} (batch execution: vector | row | auto; \
                     results are identical for any choice)",
                    self.engine.exec
                )),
                (Some("preprocache"), Some(name)) => match minerule::parse_preprocache(name) {
                    // Bad names get the engine's own typed error, shaped
                    // like the unknown-algorithm / zero-workers cases.
                    Ok(enabled) => {
                        self.engine.set_preprocache_enabled(enabled);
                        Outcome::Output(format!("preprocess cache is {}", on_off(enabled)))
                    }
                    Err(e) => Outcome::Output(e.to_string()),
                },
                (Some("preprocache"), None) => Outcome::Output(format!(
                    "preprocache: {} (preprocess artifact cache; mined rules are \
                     identical either way)",
                    on_off(self.engine.preprocache_enabled())
                )),
                (Some("minecache"), Some(name)) => match minerule::parse_minecache(name) {
                    // Bad names get the engine's own typed error, shaped
                    // like the unknown-algorithm / zero-workers cases.
                    Ok(enabled) => {
                        self.engine.set_minecache_enabled(enabled);
                        Outcome::Output(format!("mined-result cache is {}", on_off(enabled)))
                    }
                    Err(e) => Outcome::Output(e.to_string()),
                },
                (Some("minecache"), None) => Outcome::Output(format!(
                    "minecache: {} (mined-result cache for refined reruns; mined \
                     rules are identical either way)",
                    on_off(self.engine.minecache_enabled())
                )),
                (Some("indexes"), Some(name)) => match minerule::parse_index_policy(name) {
                    // Bad names get the engine's own typed error, shaped
                    // like the unknown-algorithm / zero-workers cases.
                    Ok(policy) => {
                        self.db.set_index_policy(policy);
                        Outcome::Output(format!("index policy set to {policy}"))
                    }
                    Err(e) => Outcome::Output(e.to_string()),
                },
                (Some("indexes"), None) => Outcome::Output(format!(
                    "indexes: {} (relational hash-index policy: auto | off; \
                     results are identical either way)",
                    self.db.index_policy()
                )),
                (Some("storage"), Some(name)) => match minerule::parse_storage_backend(name) {
                    // Bad names get the engine's own typed error, shaped
                    // like the unknown-algorithm / zero-workers cases.
                    Ok(backend) => {
                        if backend == relational::StorageBackend::Paged {
                            if let Some(dir) = words.next() {
                                self.db.set_storage_dir(dir);
                            }
                        }
                        match self.db.set_storage(backend) {
                            Ok(()) => Outcome::Output(format!("storage backend set to {backend}")),
                            Err(e) => Outcome::Output(format!(
                                "error: {e} (usage: \\set storage memory | paged <dir>)"
                            )),
                        }
                    }
                    Err(e) => Outcome::Output(e.to_string()),
                },
                (Some("planner"), Some(name)) => match minerule::parse_planner(name) {
                    // Bad names get the engine's own typed error, shaped
                    // like the unknown-algorithm / zero-workers cases.
                    Ok(mode) => {
                        // Mining runs stamp the database from the engine;
                        // plain SQL goes straight to the database, so set
                        // both here.
                        self.engine.planner = mode;
                        self.db.set_planner(mode);
                        Outcome::Output(format!("planner set to {mode}"))
                    }
                    Err(e) => Outcome::Output(e.to_string()),
                },
                (Some("planner"), None) => Outcome::Output(format!(
                    "planner: {} (query planner: cost | naive; results are \
                     identical for any choice)",
                    self.engine.planner
                )),
                (Some("storage"), None) => Outcome::Output(format!(
                    "storage: {} (storage backend: memory | paged <dir>; results are \
                     identical either way, paged adds crash-safe durability)",
                    self.db.storage()
                )),
                (None, _) => {
                    let mut out = format!("settings:\n  algorithm: {}", self.engine.core.algorithm);
                    for knob in KNOBS {
                        let _ = write!(out, "\n  {}: {}", knob.name, self.knob_value(knob.name));
                    }
                    Outcome::Output(out)
                }
                (Some(other), _) => {
                    let names: Vec<&str> = KNOBS.iter().map(|k| k.name).collect();
                    Outcome::Output(format!(
                        "unknown setting '{other}' — valid settings: {}",
                        names.join(", ")
                    ))
                }
            },
            "stats" => match words.next() {
                None => {
                    if !self.engine.telemetry_enabled() {
                        Outcome::Output("telemetry is off — \\set telemetry on to record".into())
                    } else {
                        let snapshot = self.engine.metrics_snapshot();
                        if snapshot.is_empty() {
                            Outcome::Output("no metrics recorded yet".into())
                        } else {
                            Outcome::Output(snapshot.render_text().trim_end().to_string())
                        }
                    }
                }
                Some("reset") => {
                    self.engine.reset_metrics();
                    Outcome::Output("metrics reset".into())
                }
                Some("json") => Outcome::Output(self.engine.metrics_snapshot().to_pretty_json()),
                Some(other) => {
                    Outcome::Output(format!("usage: \\stats [reset | json] (not '{other}')"))
                }
            },
            "save" => match words.next() {
                None => Outcome::Output("usage: \\save <directory>".into()),
                Some(dir) => match relational::persist::save(&self.db, std::path::Path::new(dir)) {
                    Ok(()) => Outcome::Output(format!("database saved to {dir}")),
                    Err(e) => Outcome::Output(format!("error: {e}")),
                },
            },
            "load" => match words.next() {
                None => Outcome::Output("usage: \\load <directory>".into()),
                Some(dir) => match relational::persist::load(std::path::Path::new(dir)) {
                    Ok(db) => {
                        self.db = db;
                        Outcome::Output(format!(
                            "database loaded from {dir} ({} tables)",
                            self.db.catalog().table_names().len()
                        ))
                    }
                    Err(e) => Outcome::Output(format!("error: {e}")),
                },
            },
            "rules" => match words.next() {
                None => Outcome::Output("usage: \\rules <output table>".into()),
                Some(table) => self.show_rules(table),
            },
            "demo" => match words.next() {
                Some("paper") => match load_purchase_table(&mut self.db) {
                    Ok(()) => Outcome::Output(
                        "loaded the paper's Purchase table (Figure 1); try:\n  \
                         MINE RULE F AS SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, \
                         SUPPORT, CONFIDENCE WHERE BODY.price >= 100 AND HEAD.price < 100 \
                         FROM Purchase WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' \
                         GROUP BY customer CLUSTER BY date HAVING BODY.date < HEAD.date \
                         EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
                            .into(),
                    ),
                    Err(e) => Outcome::Output(format!("error: {e}")),
                },
                Some("quest") => {
                    let n = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or(1000usize);
                    let data = generate_quest(&QuestConfig {
                        transactions: n,
                        ..QuestConfig::default()
                    });
                    match load_quest(&data, &mut self.db, "Baskets") {
                        Ok(()) => Outcome::Output(format!(
                            "loaded {} baskets into table Baskets (tr, item)",
                            n
                        )),
                        Err(e) => Outcome::Output(format!("error: {e}")),
                    }
                }
                Some("retail") => {
                    let n = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or(200usize);
                    let data = generate_retail(&RetailConfig {
                        customers: n,
                        ..RetailConfig::default()
                    });
                    match data.load(&mut self.db, "Purchase") {
                        Ok(()) => Outcome::Output(format!(
                            "loaded {} purchase rows for {n} customers into table Purchase",
                            data.rows.len()
                        )),
                        Err(e) => Outcome::Output(format!("error: {e}")),
                    }
                }
                _ => Outcome::Output("usage: \\demo paper | quest [n] | retail [n]".into()),
            },
            other => Outcome::Output(format!("unknown command '\\{other}' — try \\help")),
        }
    }
}

/// The `\help` text; the `\set` lines are generated from [`KNOBS`] so
/// help can never miss a knob.
fn help_text() -> String {
    let mut set_lines = String::new();
    for knob in KNOBS {
        let usage = format!("\\set {} {}", knob.name, knob.domain);
        let _ = writeln!(set_lines, "  {usage:<21} {}", knob.blurb);
    }
    let set_lines = set_lines.trim_end();
    format!(
        "\
tcdm — tightly-coupled data mining shell

Type a SQL statement (CREATE TABLE / INSERT / SELECT / ...) or a
MINE RULE statement; both run against the same in-memory database.

Commands:
  \\help                 this text
  \\tables               list tables
  \\schema <table>       show a table's columns
  \\demo paper           load the paper's Figure 1 Purchase table
  \\demo quest [n]       load n synthetic baskets (default 1000)
  \\demo retail [n]      load a synthetic retail table (default 200 customers)
  \\algorithm [name]     show or set the simple-class mining algorithm
{set_lines}
  \\stats                show recorded pipeline metrics
  \\stats reset          clear recorded metrics
  \\stats json           dump the metrics snapshot as JSON
  \\rules <table>        pretty-print a MINE RULE output table
  \\save <dir>           persist the database to a directory
  \\load <dir>           load a previously saved database
  \\timing               toggle per-statement timing
  \\quit                 leave

EXPLAIN <statement> shows the engine's plan for any SQL query."
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(session: &mut Session, line: &str) -> String {
        match session.process(line) {
            Outcome::Output(s) => s,
            Outcome::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn sql_roundtrip() {
        let mut s = Session::new();
        assert!(out(&mut s, "CREATE TABLE t (a INT)").contains("ok"));
        assert!(out(&mut s, "INSERT INTO t VALUES (1), (2)").contains("2 rows"));
        let table = out(&mut s, "SELECT COUNT(*) FROM t");
        assert!(table.contains('2'), "{table}");
    }

    #[test]
    fn mine_rule_dispatch() {
        let mut s = Session::new();
        out(&mut s, "\\demo paper");
        let result = out(
            &mut s,
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        );
        assert!(result.contains("mined"), "{result}");
        assert!(result.contains("R_Bodies"));
        // Output table is queryable afterwards.
        assert!(out(&mut s, "SELECT COUNT(*) FROM R").contains("rows"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = Session::new();
        assert!(out(&mut s, "SELECT * FROM missing").starts_with("error:"));
        assert!(out(&mut s, "MINE RULE broken").starts_with("error:"));
        // Session still usable.
        assert!(out(&mut s, "CREATE TABLE t (a INT)").contains("ok"));
    }

    #[test]
    fn commands() {
        let mut s = Session::new();
        assert_eq!(s.process("\\quit"), Outcome::Quit);
        assert!(out(&mut s, "\\help").contains("MINE RULE"));
        assert!(out(&mut s, "\\tables").contains("no tables"));
        out(&mut s, "\\demo quest 50");
        assert!(out(&mut s, "\\tables").contains("Baskets"));
        assert!(out(&mut s, "\\schema Baskets").contains("tr INT"));
        assert!(out(&mut s, "\\timing").contains("on"));
        assert!(out(&mut s, "\\algorithm partition").contains("partition"));
        let unknown = out(&mut s, "\\algorithm bogus");
        assert!(unknown.contains("unknown"), "{unknown}");
        assert!(
            unknown.contains("apriori") && unknown.contains("fpgrowth"),
            "lists the pool: {unknown}"
        );
    }

    #[test]
    fn workers_setting() {
        let mut s = Session::new();
        assert!(out(&mut s, "\\set workers").contains("workers: 1"));
        assert!(out(&mut s, "\\set workers 4").contains("workers set to 4"));
        assert!(out(&mut s, "\\set").contains("workers: 4"));
        // Zero gets the engine's typed error — the same shape as the
        // unknown-algorithm rejection (message states the valid domain).
        let zero = out(&mut s, "\\set workers 0");
        assert!(zero.contains("invalid worker count '0'"), "{zero}");
        assert!(zero.contains("at least 1"), "{zero}");
        assert!(
            out(&mut s, "\\set workers").contains("workers: 4"),
            "unchanged"
        );
        assert!(out(&mut s, "\\set workers nan").contains("not a valid"));
        assert!(out(&mut s, "\\set gizmo on").contains("unknown setting"));
        // Mining still works (and yields the same rules) with 4 workers.
        out(&mut s, "\\demo paper");
        let result = out(
            &mut s,
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        );
        assert!(result.contains("mined"), "{result}");
    }

    #[test]
    fn gidset_setting() {
        let mut s = Session::new();
        assert!(out(&mut s, "\\set gidset").contains("gidset: auto"));
        assert!(out(&mut s, "\\set gidset bitset").contains("gidset representation set to bitset"));
        assert!(out(&mut s, "\\set").contains("gidset: bitset"));
        // Bad names get the engine's typed error, stating the domain.
        let bad = out(&mut s, "\\set gidset roaring");
        assert!(
            bad.contains("unknown gid-set representation 'roaring'"),
            "{bad}"
        );
        assert!(bad.contains("list, bitset, auto"), "{bad}");
        assert!(
            out(&mut s, "\\set gidset").contains("gidset: bitset"),
            "unchanged"
        );
        // Mining works with every representation and yields the same rules.
        out(&mut s, "\\demo paper");
        let stmt =
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1";
        let mut outputs = Vec::new();
        for repr in ["list", "bitset", "auto"] {
            out(&mut s, &format!("\\set gidset {repr}"));
            let result = out(&mut s, stmt);
            assert!(result.contains("mined"), "{repr}: {result}");
            out(&mut s, "DROP TABLE R");
            outputs.push(result);
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "same rule counts");
    }

    #[test]
    fn sqlexec_setting() {
        let mut s = Session::new();
        assert!(out(&mut s, "\\set sqlexec").contains("sqlexec: auto"));
        assert!(out(&mut s, "\\set sqlexec compiled").contains("sql executor set to compiled"));
        assert!(out(&mut s, "\\set").contains("sqlexec: compiled"));
        // Bad names get the engine's typed error, stating the domain.
        let bad = out(&mut s, "\\set sqlexec vectorized");
        assert!(
            bad.contains("unknown sql execution mode 'vectorized'"),
            "{bad}"
        );
        assert!(bad.contains("compiled, interpreted, auto"), "{bad}");
        assert!(
            out(&mut s, "\\set sqlexec").contains("sqlexec: compiled"),
            "unchanged"
        );
        // Both plain SQL and mining work under every mode, with identical
        // results.
        out(&mut s, "\\demo paper");
        let stmt =
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1";
        let mut outputs = Vec::new();
        for mode in ["interpreted", "compiled", "auto"] {
            out(&mut s, &format!("\\set sqlexec {mode}"));
            let select = out(&mut s, "SELECT COUNT(*) FROM Purchase WHERE price >= 100");
            let result = out(&mut s, stmt);
            assert!(result.contains("mined"), "{mode}: {result}");
            out(&mut s, "DROP TABLE R");
            outputs.push((select, result));
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "same results");
    }

    #[test]
    fn exec_setting() {
        let mut s = Session::new();
        assert!(out(&mut s, "\\set exec").contains("exec: auto"));
        assert!(out(&mut s, "\\set exec vector").contains("batch executor set to vector"));
        assert!(out(&mut s, "\\set").contains("exec: vector"));
        // Bad names get the engine's typed error, stating the domain.
        let bad = out(&mut s, "\\set exec columnar");
        assert!(bad.contains("unknown exec mode 'columnar'"), "{bad}");
        assert!(bad.contains("vector, row, auto"), "{bad}");
        assert!(
            out(&mut s, "\\set exec").contains("exec: vector"),
            "unchanged"
        );
        // Both plain SQL and mining work under every mode, with identical
        // results.
        out(&mut s, "\\demo paper");
        let stmt =
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1";
        let mut outputs = Vec::new();
        for mode in ["row", "vector", "auto"] {
            out(&mut s, &format!("\\set exec {mode}"));
            let select = out(&mut s, "SELECT COUNT(*) FROM Purchase WHERE price >= 100");
            let result = out(&mut s, stmt);
            assert!(result.contains("mined"), "{mode}: {result}");
            out(&mut s, "DROP TABLE R");
            outputs.push((select, result));
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "same results");
    }

    #[test]
    fn planner_setting() {
        let mut s = Session::new();
        assert!(out(&mut s, "\\set planner").contains("planner: cost"));
        assert!(out(&mut s, "\\set planner naive").contains("planner set to naive"));
        assert!(out(&mut s, "\\set").contains("planner: naive"));
        // Bad names get the engine's typed error, stating the domain.
        let bad = out(&mut s, "\\set planner genetic");
        assert!(bad.contains("unknown planner mode 'genetic'"), "{bad}");
        assert!(bad.contains("cost, naive"), "{bad}");
        assert!(
            out(&mut s, "\\set planner").contains("planner: naive"),
            "unchanged"
        );
        // Both plain SQL and mining work under every mode, with identical
        // results.
        out(&mut s, "\\demo paper");
        let stmt =
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1";
        let mut outputs = Vec::new();
        for mode in ["naive", "cost"] {
            out(&mut s, &format!("\\set planner {mode}"));
            let select = out(
                &mut s,
                "SELECT COUNT(*) FROM Purchase a, Purchase b WHERE a.customer = b.customer",
            );
            let result = out(&mut s, stmt);
            assert!(result.contains("mined"), "{mode}: {result}");
            out(&mut s, "DROP TABLE R");
            outputs.push((select, result));
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "same results");
    }

    #[test]
    fn every_knob_appears_in_listing_and_help() {
        let mut s = Session::new();
        let listing = out(&mut s, "\\set");
        let help = out(&mut s, "\\help");
        let hint = out(&mut s, "\\set gizmo on");
        for knob in KNOBS {
            assert!(
                listing.contains(&format!("{}: ", knob.name)),
                "\\set listing misses '{}': {listing}",
                knob.name
            );
            assert!(
                help.contains(&format!("\\set {} {}", knob.name, knob.domain)),
                "\\help misses '{}': {help}",
                knob.name
            );
            assert!(
                hint.contains(knob.name),
                "unknown-setting hint misses '{}': {hint}",
                knob.name
            );
        }
    }

    #[test]
    fn preprocache_setting() {
        let mut s = Session::new();
        assert!(out(&mut s, "\\set preprocache").contains("preprocache: on"));
        assert!(out(&mut s, "\\set preprocache off").contains("preprocess cache is off"));
        assert!(out(&mut s, "\\set").contains("preprocache: off"));
        // Bad names get the engine's typed error, stating the domain.
        let bad = out(&mut s, "\\set preprocache maybe");
        assert!(
            bad.contains("unknown preprocess cache mode 'maybe'"),
            "{bad}"
        );
        assert!(bad.contains("on, off"), "{bad}");
        assert!(
            out(&mut s, "\\set preprocache").contains("preprocache: off"),
            "unchanged"
        );
        // Mining yields identical output with the cache on and off, and a
        // threshold-only rerun with the cache on is a warm hit.
        out(&mut s, "\\demo paper");
        let stmt =
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1";
        let mut outputs = Vec::new();
        for state in ["off", "on", "on"] {
            out(&mut s, &format!("\\set preprocache {state}"));
            let result = out(&mut s, stmt);
            assert!(result.contains("mined"), "{state}: {result}");
            out(&mut s, "DROP TABLE R");
            outputs.push(result);
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "same rules");
        let stats = out(&mut s, "\\stats");
        assert!(stats.contains("preprocess.cache.hit"), "{stats}");
    }

    #[test]
    fn minecache_setting() {
        let mut s = Session::new();
        assert!(out(&mut s, "\\set minecache").contains("minecache: on"));
        assert!(out(&mut s, "\\set minecache off").contains("mined-result cache is off"));
        assert!(out(&mut s, "\\set").contains("minecache: off"));
        // Bad names get the engine's typed error, stating the domain.
        let bad = out(&mut s, "\\set minecache maybe");
        assert!(
            bad.contains("unknown mined-result cache mode 'maybe'"),
            "{bad}"
        );
        assert!(bad.contains("on, off"), "{bad}");
        assert!(
            out(&mut s, "\\set minecache").contains("minecache: off"),
            "unchanged"
        );
        // Mining yields identical output with the cache on and off, and a
        // tightened-threshold rerun with the cache on serves warm.
        out(&mut s, "\\demo paper");
        let stmt = |support: f64| {
            format!(
                "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
                 FROM Purchase GROUP BY customer \
                 EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: 0.1"
            )
        };
        let mut outputs = Vec::new();
        for state in ["off", "on"] {
            out(&mut s, &format!("\\set minecache {state}"));
            out(&mut s, &stmt(0.25));
            out(&mut s, "DROP TABLE R");
            let result = out(&mut s, &stmt(0.5));
            assert!(result.contains("mined"), "{state}: {result}");
            out(&mut s, "DROP TABLE R");
            outputs.push(result);
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "same rules");
        let stats = out(&mut s, "\\stats");
        assert!(stats.contains("core.minecache.hit"), "{stats}");
        assert!(stats.contains("core.minecache.refine"), "{stats}");
    }

    #[test]
    fn every_knob_roundtrips_and_rejects_bad_values() {
        // Companion to `every_knob_appears_in_listing_and_help`: each
        // KNOBS entry must answer a no-arg query with its current value,
        // reject a bogus value with an error naming it, and keep its
        // previous value afterwards — so no knob can ship without the
        // full \set round-trip.
        let mut s = Session::new();
        for knob in KNOBS {
            let show = out(&mut s, &format!("\\set {}", knob.name));
            assert!(
                show.contains(&format!("{}: ", knob.name)),
                "\\set {} shows no value: {show}",
                knob.name
            );
            let bad = out(&mut s, &format!("\\set {} zzz_bogus", knob.name));
            assert!(
                bad.contains("zzz_bogus"),
                "'\\set {} zzz_bogus' does not name the bad value: {bad}",
                knob.name
            );
            assert!(
                bad.contains("unknown") || bad.contains("not a valid"),
                "'\\set {} zzz_bogus' is not a typed rejection: {bad}",
                knob.name
            );
            assert_eq!(
                out(&mut s, &format!("\\set {}", knob.name)),
                show,
                "rejected value changed knob '{}'",
                knob.name
            );
        }
    }

    #[test]
    fn indexes_setting() {
        let mut s = Session::new();
        assert!(out(&mut s, "\\set indexes").contains("indexes: auto"));
        assert!(out(&mut s, "\\set indexes off").contains("index policy set to off"));
        assert!(out(&mut s, "\\set").contains("indexes: off"));
        // Bad names get the engine's typed error, stating the domain.
        let bad = out(&mut s, "\\set indexes fast");
        assert!(bad.contains("unknown index policy 'fast'"), "{bad}");
        assert!(bad.contains("auto, off"), "{bad}");
        assert!(
            out(&mut s, "\\set indexes").contains("indexes: off"),
            "unchanged"
        );
        // SQL and mining return identical results under both policies.
        out(&mut s, "\\demo paper");
        let stmt =
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1";
        let mut outputs = Vec::new();
        for policy in ["off", "auto"] {
            out(&mut s, &format!("\\set indexes {policy}"));
            let select = out(&mut s, "SELECT item, COUNT(*) FROM Purchase GROUP BY item");
            let result = out(&mut s, stmt);
            assert!(result.contains("mined"), "{policy}: {result}");
            out(&mut s, "DROP TABLE R");
            outputs.push((select, result));
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "same results");
    }

    #[test]
    fn storage_setting() {
        let dir = std::env::temp_dir().join(format!("tcdm_cli_storage_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = Session::new();
        assert!(out(&mut s, "\\set storage").contains("storage: memory"));
        // Bad names get the engine's typed error, stating the domain.
        let bad = out(&mut s, "\\set storage cloud");
        assert!(bad.contains("unknown storage backend 'cloud'"), "{bad}");
        assert!(bad.contains("memory, paged"), "{bad}");
        // Paged without a directory is a usage error, and the session
        // stays on the memory backend.
        let nodir = out(&mut s, "\\set storage paged");
        assert!(nodir.contains("error"), "{nodir}");
        assert!(nodir.contains("\\set storage"), "{nodir}");
        assert!(out(&mut s, "\\set storage").contains("storage: memory"));
        // With a directory the switch works and SQL becomes durable.
        let attach = format!("\\set storage paged {}", dir.display());
        assert!(out(&mut s, &attach).contains("storage backend set to paged"));
        assert!(out(&mut s, "\\set").contains("storage: paged"));
        out(&mut s, "CREATE TABLE t (a INT)");
        out(&mut s, "INSERT INTO t VALUES (1), (2)");
        assert!(out(&mut s, "\\set storage memory").contains("set to memory"));
        drop(s);
        // A fresh session re-attaches the directory and sees the data.
        let mut s2 = Session::new();
        assert!(out(&mut s2, &attach).contains("storage backend set to paged"));
        assert!(out(&mut s2, "SELECT COUNT(*) FROM t").contains('2'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_and_telemetry_commands() {
        let mut s = Session::new();
        assert!(out(&mut s, "\\set telemetry").contains("telemetry: on"));
        assert!(out(&mut s, "\\stats").contains("no metrics recorded"));
        out(&mut s, "\\demo paper");
        out(
            &mut s,
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        );
        let stats = out(&mut s, "\\stats");
        assert!(stats.contains("translator.statements"), "{stats}");
        assert!(stats.contains("phase.core"), "{stats}");
        let json = out(&mut s, "\\stats json");
        assert!(json.contains("\"schema_version\""), "{json}");
        assert!(out(&mut s, "\\stats reset").contains("reset"));
        assert!(out(&mut s, "\\stats").contains("no metrics recorded"));
        // Off: runs record nothing and \stats says so.
        assert!(out(&mut s, "\\set telemetry off").contains("telemetry is off"));
        out(
            &mut s,
            "MINE RULE R2 AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        );
        assert!(out(&mut s, "\\stats").contains("telemetry is off"));
        assert!(out(&mut s, "\\set telemetry maybe").contains("not a valid"));
        assert!(out(&mut s, "\\set telemetry on").contains("telemetry is on"));
        assert!(out(&mut s, "\\stats bogus").contains("usage"));
        assert!(out(&mut s, "\\help").contains("\\stats"));
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tcdm_cli_save_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = Session::new();
        out(&mut s, "CREATE TABLE t (a INT)");
        out(&mut s, "INSERT INTO t VALUES (1), (2)");
        assert!(out(&mut s, &format!("\\save {}", dir.display())).contains("saved"));
        let mut s2 = Session::new();
        assert!(out(&mut s2, &format!("\\load {}", dir.display())).contains("loaded"));
        assert!(out(&mut s2, "SELECT COUNT(*) FROM t").contains('2'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rules_viewer() {
        let mut s = Session::new();
        out(&mut s, "\\demo paper");
        out(
            &mut s,
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        );
        let view = out(&mut s, "\\rules R");
        assert!(view.contains("=>"), "{view}");
        assert!(out(&mut s, "\\rules Purchase").contains("not a MINE RULE output table"));
    }

    #[test]
    fn explain_through_shell() {
        let mut s = Session::new();
        out(&mut s, "CREATE TABLE t (a INT)");
        let p = out(&mut s, "EXPLAIN SELECT a FROM t WHERE a > 1");
        assert!(p.contains("scan t"), "{p}");
    }

    #[test]
    fn demo_paper_supports_full_statement() {
        let mut s = Session::new();
        out(&mut s, "\\demo paper");
        let result = out(&mut s, minerule::paper_example::FILTERED_ORDERED_SETS);
        assert!(result.contains("mined 3 rules"), "{result}");
    }
}
