//! Experiments F4 and E3.
//!
//! F4 — cost of the preprocessing programs themselves: the simple chain
//! `Q0..Q4` (Figure 4a) vs the general chain with clusters and the
//! mining-condition queries `Q5..Q11` (Figure 4b).
//!
//! E3 — the borderline ablation: the same clustered task with the mining
//! condition (elementary rules built *in SQL* by Q8/Q9/Q10) vs without it
//! (elementary rules built *in the core operator*). Measures where the
//! paper's chosen border moves work between the SQL server and the core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minerule::preprocess::preprocess;
use minerule::{parse_mine_rule, translate, MineRuleEngine};
use tcdm_bench::{quest_db, retail_db, simple_statement, temporal_statement, temporal_statement_no_mining_cond};

fn f4_preprocessing_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("F4_preprocessing");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("simple_Q0_Q4", |b| {
        b.iter_batched(
            || {
                let db = quest_db(1000, 3);
                let stmt = parse_mine_rule(&simple_statement(0.03, 0.4)).unwrap();
                let t = translate(&stmt, db.catalog()).unwrap();
                (db, t)
            },
            |(mut db, t)| preprocess(&mut db, &t).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("general_Q0_Q11", |b| {
        b.iter_batched(
            || {
                let db = retail_db(300, 3);
                let stmt = parse_mine_rule(&temporal_statement(0.05, 0.3)).unwrap();
                let t = translate(&stmt, db.catalog()).unwrap();
                (db, t)
            },
            |(mut db, t)| preprocess(&mut db, &t).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn e3_borderline(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_borderline");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &customers in &[150usize, 400] {
        group.bench_with_input(
            BenchmarkId::new("mining_cond_in_sql", customers),
            &customers,
            |b, &n| {
                b.iter_batched(
                    || retail_db(n, 5),
                    |mut db| {
                        MineRuleEngine::new()
                            .execute(&mut db, &temporal_statement(0.05, 0.2))
                            .unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("elementary_in_core", customers),
            &customers,
            |b, &n| {
                b.iter_batched(
                    || retail_db(n, 5),
                    |mut db| {
                        MineRuleEngine::new()
                            .execute(&mut db, &temporal_statement_no_mining_cond(0.05, 0.2))
                            .unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, f4_preprocessing_chains, e3_borderline);
criterion_main!(benches);
