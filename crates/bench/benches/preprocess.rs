//! Experiments F4 and E3.
//!
//! F4 — cost of the preprocessing programs themselves: the simple chain
//! `Q0..Q4` (Figure 4a) vs the general chain with clusters and the
//! mining-condition queries `Q5..Q11` (Figure 4b).
//!
//! E3 — the borderline ablation: the same clustered task with the mining
//! condition (elementary rules built *in SQL* by Q8/Q9/Q10) vs without it
//! (elementary rules built *in the core operator*). Measures where the
//! paper's chosen border moves work between the SQL server and the core.

use minerule::preprocess::preprocess;
use minerule::{parse_mine_rule, translate, MineRuleEngine};
use tcdm_bench::bench::Group;
use tcdm_bench::{
    quest_db, retail_db, simple_statement, temporal_statement, temporal_statement_no_mining_cond,
};

fn f4_preprocessing_chains() {
    let mut group = Group::new("F4_preprocessing");

    group.bench_batched(
        "simple_Q0_Q4",
        || {
            let db = quest_db(1000, 3);
            let stmt = parse_mine_rule(&simple_statement(0.03, 0.4)).unwrap();
            let t = translate(&stmt, db.catalog()).unwrap();
            (db, t)
        },
        |(mut db, t)| preprocess(&mut db, &t).unwrap(),
    );
    group.bench_batched(
        "general_Q0_Q11",
        || {
            let db = retail_db(300, 3);
            let stmt = parse_mine_rule(&temporal_statement(0.05, 0.3)).unwrap();
            let t = translate(&stmt, db.catalog()).unwrap();
            (db, t)
        },
        |(mut db, t)| preprocess(&mut db, &t).unwrap(),
    );
}

fn e3_borderline() {
    let mut group = Group::new("E3_borderline");
    for &customers in &[150usize, 400] {
        group.bench_batched(
            &format!("mining_cond_in_sql/{customers}"),
            || retail_db(customers, 5),
            |mut db| {
                MineRuleEngine::new()
                    .execute(&mut db, &temporal_statement(0.05, 0.2))
                    .unwrap()
            },
        );
        group.bench_batched(
            &format!("elementary_in_core/{customers}"),
            || retail_db(customers, 5),
            |mut db| {
                MineRuleEngine::new()
                    .execute(&mut db, &temporal_statement_no_mining_cond(0.05, 0.2))
                    .unwrap()
            },
        );
    }
}

fn main() {
    f4_preprocessing_chains();
    e3_borderline();
}
