//! Experiments E1 and E2.
//!
//! E1 — tightly-coupled kernel vs the decoupled baseline (§1's argument):
//! same mining task, identical rules, different architecture cost.
//!
//! E2 — shared preprocessing (§3): re-running a statement against already
//! materialised encoded tables skips `Q0`..`Q11` entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minerule::{decoupled, MineRuleEngine};
use tcdm_bench::{quest_db, simple_statement};

fn e1_coupled_vs_decoupled(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_coupling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &transactions in &[500usize, 1500] {
        group.bench_with_input(
            BenchmarkId::new("tightly_coupled", transactions),
            &transactions,
            |b, &n| {
                b.iter_batched(
                    || quest_db(n, 7),
                    |mut db| {
                        MineRuleEngine::new()
                            .execute(&mut db, &simple_statement(0.03, 0.4))
                            .unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decoupled", transactions),
            &transactions,
            |b, &n| {
                b.iter_batched(
                    || quest_db(n, 7),
                    |mut db| {
                        decoupled::run_decoupled(
                            &mut db,
                            "SELECT tr, item FROM Baskets",
                            0.03,
                            0.4,
                            "FlatRules",
                        )
                        .unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn e2_shared_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_shared_preprocessing");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let statement = simple_statement(0.03, 0.4);

    group.bench_function("cold_full_pipeline", |b| {
        b.iter_batched(
            || quest_db(1000, 9),
            |mut db| MineRuleEngine::new().execute(&mut db, &statement).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("warm_reused_encoding", |b| {
        b.iter_batched(
            || {
                let mut db = quest_db(1000, 9);
                MineRuleEngine::new().execute(&mut db, &statement).unwrap();
                db
            },
            |mut db| {
                MineRuleEngine::new()
                    .execute_reusing_preprocessing(&mut db, &statement)
                    .unwrap()
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, e1_coupled_vs_decoupled, e2_shared_preprocessing);
criterion_main!(benches);
