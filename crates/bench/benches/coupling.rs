//! Experiments E1 and E2.
//!
//! E1 — tightly-coupled kernel vs the decoupled baseline (§1's argument):
//! same mining task, identical rules, different architecture cost.
//!
//! E2 — shared preprocessing (§3): re-running a statement against already
//! materialised encoded tables skips `Q0`..`Q11` entirely.

use minerule::{decoupled, MineRuleEngine};
use tcdm_bench::bench::Group;
use tcdm_bench::{quest_db, simple_statement};

fn e1_coupled_vs_decoupled() {
    let mut group = Group::new("E1_coupling");
    for &transactions in &[500usize, 1500] {
        group.bench_batched(
            &format!("tightly_coupled/{transactions}"),
            || quest_db(transactions, 7),
            |mut db| {
                MineRuleEngine::new()
                    .execute(&mut db, &simple_statement(0.03, 0.4))
                    .unwrap()
            },
        );
        group.bench_batched(
            &format!("tightly_coupled_4workers/{transactions}"),
            || quest_db(transactions, 7),
            |mut db| {
                MineRuleEngine::new()
                    .with_workers(4)
                    .execute(&mut db, &simple_statement(0.03, 0.4))
                    .unwrap()
            },
        );
        group.bench_batched(
            &format!("decoupled/{transactions}"),
            || quest_db(transactions, 7),
            |mut db| {
                decoupled::run_decoupled(
                    &mut db,
                    "SELECT tr, item FROM Baskets",
                    0.03,
                    0.4,
                    "FlatRules",
                )
                .unwrap()
            },
        );
    }
}

fn e2_shared_preprocessing() {
    let mut group = Group::new("E2_shared_preprocessing");
    let statement = simple_statement(0.03, 0.4);

    group.bench_batched(
        "cold_full_pipeline",
        || quest_db(1000, 9),
        |mut db| MineRuleEngine::new().execute(&mut db, &statement).unwrap(),
    );
    group.bench_batched(
        "warm_reused_encoding",
        || {
            let mut db = quest_db(1000, 9);
            MineRuleEngine::new().execute(&mut db, &statement).unwrap();
            db
        },
        |mut db| {
            MineRuleEngine::new()
                .execute_reusing_preprocessing(&mut db, &statement)
                .unwrap()
        },
    );
}

fn main() {
    e1_coupled_vs_decoupled();
    e2_shared_preprocessing();
}
