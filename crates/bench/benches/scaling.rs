//! Experiment E7 — scalability sweeps, the shape every evaluation in the
//! paper's reference list reports: wall-clock vs number of groups and vs
//! the support threshold (lower support → exponentially more candidates).

use minerule::MineRuleEngine;
use tcdm_bench::bench::Group;
use tcdm_bench::{quest_db, simple_statement};

fn e7_group_scaling() {
    let mut group = Group::new("E7_group_scaling");
    for &transactions in &[250usize, 500, 1000, 2000] {
        group.bench_batched(
            &transactions.to_string(),
            || quest_db(transactions, 19),
            |mut db| {
                MineRuleEngine::new()
                    .execute(&mut db, &simple_statement(0.03, 0.4))
                    .unwrap()
            },
        );
    }
}

fn e7_worker_scaling() {
    // The parallel-executor dimension: same statement, same rules, the
    // worker knob swept. On a multi-core host the core phase shrinks;
    // rule output is bit-identical throughout.
    let mut group = Group::new("E7_worker_scaling");
    for &workers in &[1usize, 2, 4, 8] {
        group.bench_batched(
            &format!("workers={workers}"),
            || quest_db(1000, 19),
            move |mut db| {
                MineRuleEngine::new()
                    .with_workers(workers)
                    .execute(&mut db, &simple_statement(0.02, 0.4))
                    .unwrap()
            },
        );
    }
}

fn e7_support_sweep() {
    let mut group = Group::new("E7_support_sweep");
    for &support in &[0.08f64, 0.04, 0.02, 0.01] {
        group.bench_batched(
            &support.to_string(),
            || quest_db(1000, 19),
            |mut db| {
                MineRuleEngine::new()
                    .execute(&mut db, &simple_statement(support, 0.4))
                    .unwrap()
            },
        );
    }
}

fn main() {
    e7_group_scaling();
    e7_worker_scaling();
    e7_support_sweep();
}
