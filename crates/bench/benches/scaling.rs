//! Experiment E7 — scalability sweeps, the shape every evaluation in the
//! paper's reference list reports: wall-clock vs number of groups and vs
//! the support threshold (lower support → exponentially more candidates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minerule::MineRuleEngine;
use tcdm_bench::{quest_db, simple_statement};

fn e7_group_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_group_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &transactions in &[250usize, 500, 1000, 2000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(transactions),
            &transactions,
            |b, &n| {
                b.iter_batched(
                    || quest_db(n, 19),
                    |mut db| {
                        MineRuleEngine::new()
                            .execute(&mut db, &simple_statement(0.03, 0.4))
                            .unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn e7_support_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_support_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &support in &[0.08f64, 0.04, 0.02, 0.01] {
        group.bench_with_input(
            BenchmarkId::from_parameter(support),
            &support,
            |b, &s| {
                b.iter_batched(
                    || quest_db(1000, 19),
                    |mut db| {
                        MineRuleEngine::new()
                            .execute(&mut db, &simple_statement(s, 0.4))
                            .unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, e7_group_scaling, e7_support_sweep);
criterion_main!(benches);
