//! Experiment E9 — parameter ablations inside the algorithm pool:
//! partition count (sequential and parallel), DHP hash-table size, and
//! sampling fraction. These are the knobs the respective papers expose;
//! the architecture makes them swappable without touching the kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{generate_quest, QuestConfig};
use minerule::algo::dhp::Dhp;
use minerule::algo::partition::Partition;
use minerule::algo::sampling::Sampling;
use minerule::algo::{ItemsetMiner, SimpleInput};

fn input(min_support: f64) -> SimpleInput {
    let data = generate_quest(&QuestConfig {
        transactions: 1500,
        avg_transaction_size: 8.0,
        avg_pattern_size: 3.0,
        patterns: 50,
        items: 200,
        seed: 101,
        ..QuestConfig::default()
    });
    let total = data.transactions.len() as u32;
    SimpleInput {
        groups: data.transactions,
        total_groups: total,
        min_groups: ((total as f64 * min_support).ceil() as u32).max(1),
    }
}

fn e9_partition_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_partition_count");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let input = input(0.02);
    for &parts in &[1usize, 2, 4, 8, 16] {
        for parallel in [false, true] {
            let miner = Partition {
                partitions: parts,
                parallel,
            };
            group.bench_with_input(
                BenchmarkId::new(
                    if parallel { "parallel" } else { "sequential" },
                    parts,
                ),
                &input,
                |b, input| b.iter(|| miner.mine(input)),
            );
        }
    }
    group.finish();
}

fn e9_dhp_buckets(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_dhp_buckets");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let input = input(0.02);
    for &buckets in &[1usize << 8, 1 << 12, 1 << 16, 1 << 20] {
        let miner = Dhp { buckets };
        group.bench_with_input(
            BenchmarkId::from_parameter(buckets),
            &input,
            |b, input| b.iter(|| miner.mine(input)),
        );
    }
    group.finish();
}

fn e9_sampling_fraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_sampling_fraction");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let input = input(0.02);
    for &fraction in &[0.1f64, 0.25, 0.5, 0.75] {
        let miner = Sampling {
            sample_fraction: fraction,
            ..Sampling::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(fraction),
            &input,
            |b, input| b.iter(|| miner.mine(input)),
        );
    }
    group.finish();
}

criterion_group!(benches, e9_partition_count, e9_dhp_buckets, e9_sampling_fraction);
criterion_main!(benches);
