//! Experiment E9 — parameter ablations inside the algorithm pool:
//! partition count (sequential and parallel), DHP hash-table size, and
//! sampling fraction. These are the knobs the respective papers expose;
//! the architecture makes them swappable without touching the kernel.

use datagen::{generate_quest, QuestConfig};
use minerule::algo::dhp::Dhp;
use minerule::algo::partition::Partition;
use minerule::algo::sampling::Sampling;
use minerule::algo::{ItemsetMiner, SimpleInput};
use tcdm_bench::bench::Group;

fn input(min_support: f64) -> SimpleInput {
    let data = generate_quest(&QuestConfig {
        transactions: 1500,
        avg_transaction_size: 8.0,
        avg_pattern_size: 3.0,
        patterns: 50,
        items: 200,
        seed: 101,
        ..QuestConfig::default()
    });
    let total = data.transactions.len() as u32;
    SimpleInput {
        groups: data.transactions,
        total_groups: total,
        min_groups: ((total as f64 * min_support).ceil() as u32).max(1),
    }
}

fn e9_partition_count() {
    let mut group = Group::new("E9_partition_count");
    let input = input(0.02);
    for &parts in &[1usize, 2, 4, 8, 16] {
        for parallel in [false, true] {
            let miner = Partition {
                partitions: parts,
                parallel,
            };
            let mode = if parallel { "parallel" } else { "sequential" };
            group.bench(&format!("{mode}/{parts}"), || miner.mine(&input));
        }
    }
}

fn e9_dhp_buckets() {
    let mut group = Group::new("E9_dhp_buckets");
    let input = input(0.02);
    for &buckets in &[1usize << 8, 1 << 12, 1 << 16, 1 << 20] {
        let miner = Dhp { buckets };
        group.bench(&buckets.to_string(), || miner.mine(&input));
    }
}

fn e9_sampling_fraction() {
    let mut group = Group::new("E9_sampling_fraction");
    let input = input(0.02);
    for &fraction in &[0.1f64, 0.25, 0.5, 0.75] {
        let miner = Sampling {
            sample_fraction: fraction,
            ..Sampling::default()
        };
        group.bench(&fraction.to_string(), || miner.mine(&input));
    }
}

fn main() {
    e9_partition_count();
    e9_dhp_buckets();
    e9_sampling_fraction();
}
