//! Experiments E5 and E6.
//!
//! E5 — the lattice-order ablation (§4.3.2: "the efficiency of the
//! algorithm is maximized if, at each step, we start from the set with
//! lower cardinality"): MinParent vs the fixed BodyFirst order.
//!
//! E6 — generality overhead: the same simple-class statement through the
//! simple algorithm pool vs forced through the general lattice.

use minerule::lattice::ExpansionOrder;
use minerule::MineRuleEngine;
use tcdm_bench::bench::Group;
use tcdm_bench::{quest_db, retail_db};

fn wide_head_statement(support: f64) -> String {
    // 1..3 heads make the head dimension of the lattice meaningful.
    format!(
        "MINE RULE Wide AS \
         SELECT DISTINCT 1..n item AS BODY, 1..3 item AS HEAD, SUPPORT, CONFIDENCE \
         WHERE BODY.price >= 0 \
         FROM Purchase GROUP BY customer \
         EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: 0.05"
    )
}

fn e5_expansion_order() {
    let mut group = Group::new("E5_lattice_order");
    for (name, order) in [
        ("min_parent", ExpansionOrder::MinParent),
        ("body_first", ExpansionOrder::BodyFirst),
    ] {
        group.bench_batched(
            &format!("{name}/250"),
            || retail_db(250, 13),
            |mut db| {
                let mut engine = MineRuleEngine::new();
                engine.core.order = order;
                engine.execute(&mut db, &wide_head_statement(0.08)).unwrap()
            },
        );
    }
}

fn e6_simple_vs_general() {
    let mut group = Group::new("E6_generality_overhead");
    let statement = "MINE RULE Both AS \
        SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE \
        FROM Baskets GROUP BY tr \
        EXTRACTING RULES WITH SUPPORT: 0.03, CONFIDENCE: 0.3";
    group.bench_batched(
        "simple_core",
        || quest_db(800, 17),
        |mut db| MineRuleEngine::new().execute(&mut db, statement).unwrap(),
    );
    group.bench_batched(
        "forced_general_lattice",
        || quest_db(800, 17),
        |mut db| {
            let mut engine = MineRuleEngine::new();
            engine.core.force_general = true;
            engine.execute(&mut db, statement).unwrap()
        },
    );
}

fn main() {
    e5_expansion_order();
    e6_simple_vs_general();
}
