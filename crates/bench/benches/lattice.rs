//! Experiments E5 and E6.
//!
//! E5 — the lattice-order ablation (§4.3.2: "the efficiency of the
//! algorithm is maximized if, at each step, we start from the set with
//! lower cardinality"): MinParent vs the fixed BodyFirst order.
//!
//! E6 — generality overhead: the same simple-class statement through the
//! simple algorithm pool vs forced through the general lattice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minerule::lattice::ExpansionOrder;
use minerule::MineRuleEngine;
use tcdm_bench::{quest_db, retail_db};

fn wide_head_statement(support: f64) -> String {
    // 1..3 heads make the head dimension of the lattice meaningful.
    format!(
        "MINE RULE Wide AS \
         SELECT DISTINCT 1..n item AS BODY, 1..3 item AS HEAD, SUPPORT, CONFIDENCE \
         WHERE BODY.price >= 0 \
         FROM Purchase GROUP BY customer \
         EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: 0.05"
    )
}

fn e5_expansion_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_lattice_order");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, order) in [
        ("min_parent", ExpansionOrder::MinParent),
        ("body_first", ExpansionOrder::BodyFirst),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 250), &order, |b, &order| {
            b.iter_batched(
                || retail_db(250, 13),
                |mut db| {
                    let mut engine = MineRuleEngine::new();
                    engine.core.order = order;
                    engine.execute(&mut db, &wide_head_statement(0.08)).unwrap()
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn e6_simple_vs_general(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_generality_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let statement = "MINE RULE Both AS \
        SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE \
        FROM Baskets GROUP BY tr \
        EXTRACTING RULES WITH SUPPORT: 0.03, CONFIDENCE: 0.3";
    group.bench_function("simple_core", |b| {
        b.iter_batched(
            || quest_db(800, 17),
            |mut db| MineRuleEngine::new().execute(&mut db, statement).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("forced_general_lattice", |b| {
        b.iter_batched(
            || quest_db(800, 17),
            |mut db| {
                let mut engine = MineRuleEngine::new();
                engine.core.force_general = true;
                engine.execute(&mut db, statement).unwrap()
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, e5_expansion_order, e6_simple_vs_general);
criterion_main!(benches);
