//! Experiment E8 — postprocessing (§4.4): cost of storing encoded rules
//! and decoding them into the user tables, as a function of the number of
//! rules produced (driven by the support threshold).

use minerule::postprocess::{postprocess, store_encoded_rules};
use minerule::preprocess::preprocess;
use minerule::{core_op, encoded, parse_mine_rule, translate};
use tcdm_bench::bench::Group;
use tcdm_bench::{quest_db, simple_statement};

fn e8_decode_cost() {
    let mut group = Group::new("E8_postprocess");
    for &support in &[0.05f64, 0.02, 0.01] {
        // Fixed pipeline state: preprocessing + core done once, then the
        // benchmark measures store + decode only.
        let statement = simple_statement(support, 0.1);
        let setup = || {
            let mut db = quest_db(800, 29);
            let stmt = parse_mine_rule(&statement).unwrap();
            let translation = translate(&stmt, db.catalog()).unwrap();
            preprocess(&mut db, &translation).unwrap();
            let input = encoded::read_encoded(&mut db, &translation).unwrap();
            let out = core_op::run_core(&input, &core_op::CoreOptions::default()).unwrap();
            (db, translation, out.rules)
        };
        let (_, _, rules) = setup();
        group.bench_batched(
            &format!("s={support}_rules={}", rules.len()),
            setup,
            |(mut db, translation, rules)| {
                store_encoded_rules(&mut db, &translation, &rules).unwrap();
                postprocess(&mut db, &translation).unwrap();
            },
        );
    }
}

fn main() {
    e8_decode_cost();
}
