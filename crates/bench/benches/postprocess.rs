//! Experiment E8 — postprocessing (§4.4): cost of storing encoded rules
//! and decoding them into the user tables, as a function of the number of
//! rules produced (driven by the support threshold).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minerule::postprocess::{postprocess, store_encoded_rules};
use minerule::preprocess::preprocess;
use minerule::{core_op, encoded, parse_mine_rule, translate};
use tcdm_bench::{quest_db, simple_statement};

fn e8_decode_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_postprocess");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &support in &[0.05f64, 0.02, 0.01] {
        // Fixed pipeline state: preprocessing + core done once, then the
        // benchmark measures store + decode only.
        let statement = simple_statement(support, 0.1);
        let setup = || {
            let mut db = quest_db(800, 29);
            let stmt = parse_mine_rule(&statement).unwrap();
            let translation = translate(&stmt, db.catalog()).unwrap();
            preprocess(&mut db, &translation).unwrap();
            let input = encoded::read_encoded(&mut db, &translation).unwrap();
            let out = core_op::run_core(&input, &core_op::CoreOptions::default()).unwrap();
            (db, translation, out.rules)
        };
        let (_, _, rules) = setup();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("s={support}_rules={}", rules.len())),
            &support,
            |b, _| {
                b.iter_batched(
                    setup,
                    |(mut db, translation, rules)| {
                        store_encoded_rules(&mut db, &translation, &rules).unwrap();
                        postprocess(&mut db, &translation).unwrap();
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, e8_decode_cost);
criterion_main!(benches);
