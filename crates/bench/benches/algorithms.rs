//! Experiment E4 — the algorithm pool (§3 "algorithm interoperability"):
//! all pool members on identical encoded input, across support
//! thresholds. The architecture claim is that they are interchangeable;
//! the interesting measurement is how their relative cost shifts with the
//! threshold (Apriori/gid-lists win at high support, partitioning and
//! hash pruning pay off as thresholds drop and candidate sets grow).

use datagen::{generate_quest, QuestConfig};
use minerule::algo::{default_pool, ShardExec, SimpleInput};
use tcdm_bench::bench::Group;

fn pool_input(transactions: usize, min_support: f64) -> SimpleInput {
    let data = generate_quest(&QuestConfig {
        transactions,
        avg_transaction_size: 8.0,
        avg_pattern_size: 3.0,
        patterns: 50,
        items: 200,
        seed: 77,
        ..QuestConfig::default()
    });
    let total = data.transactions.len() as u32;
    SimpleInput {
        groups: data.transactions,
        total_groups: total,
        min_groups: ((total as f64 * min_support).ceil() as u32).max(1),
    }
}

fn e4_algorithm_pool() {
    let mut group = Group::new("E4_algorithm_pool");
    for &support in &[0.05f64, 0.02, 0.01] {
        let input = pool_input(1500, support);
        for miner in default_pool() {
            group.bench(&format!("{}/s={support}", miner.name()), || {
                miner.mine(&input)
            });
        }
    }
}

fn e4_pool_workers() {
    // Every pool member through the sharded executor: identical
    // inventories, counting passes spread across workers.
    let mut group = Group::new("E4_pool_workers");
    let input = pool_input(1500, 0.02);
    for &workers in &[1usize, 2, 4] {
        let exec = ShardExec::new(workers);
        for miner in default_pool() {
            group.bench(&format!("{}/w={workers}", miner.name()), || {
                miner.mine_sharded(&input, &exec)
            });
        }
    }
}

fn main() {
    e4_algorithm_pool();
    e4_pool_workers();
}
