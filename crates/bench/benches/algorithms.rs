//! Experiment E4 — the algorithm pool (§3 "algorithm interoperability"):
//! all five pool members on identical encoded input, across support
//! thresholds. The architecture claim is that they are interchangeable;
//! the interesting measurement is how their relative cost shifts with the
//! threshold (Apriori/gid-lists win at high support, partitioning and
//! hash pruning pay off as thresholds drop and candidate sets grow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{generate_quest, QuestConfig};
use minerule::algo::{default_pool, SimpleInput};

fn pool_input(transactions: usize, min_support: f64) -> SimpleInput {
    let data = generate_quest(&QuestConfig {
        transactions,
        avg_transaction_size: 8.0,
        avg_pattern_size: 3.0,
        patterns: 50,
        items: 200,
        seed: 77,
        ..QuestConfig::default()
    });
    let total = data.transactions.len() as u32;
    SimpleInput {
        groups: data.transactions,
        total_groups: total,
        min_groups: ((total as f64 * min_support).ceil() as u32).max(1),
    }
}

fn e4_algorithm_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_algorithm_pool");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &support in &[0.05f64, 0.02, 0.01] {
        let input = pool_input(1500, support);
        for miner in default_pool() {
            group.bench_with_input(
                BenchmarkId::new(miner.name(), format!("s={support}")),
                &input,
                |b, input| b.iter(|| miner.mine(input)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, e4_algorithm_pool);
criterion_main!(benches);
