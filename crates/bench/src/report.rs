//! Structured results for the experiments harness: every experiment row
//! lands in a [`Report`], which exports the schema-versioned
//! `BENCH_<name>.json` artifact and the plain-text golden summary CI
//! uses for rule-count regression gating (see `docs/OBSERVABILITY.md`).

use std::time::Duration;

use minerule::telemetry::Json;

/// Version of the `BENCH_<name>.json` layout. Bump on any field change.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// One measured experiment row.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Experiment identifier (`"E1"`, `"F2"`, ...).
    pub experiment: &'static str,
    /// Case label within the experiment (`"baskets=500"`).
    pub case: String,
    /// Deterministic output size (rule or itemset count), when the case
    /// has one. Only these feed the golden regression check — timings
    /// never gate.
    pub rules: Option<u64>,
    /// Measured wall-clock in milliseconds.
    pub ms: f64,
}

/// Collected results of one harness run.
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    quick: bool,
    entries: Vec<Entry>,
}

impl Report {
    /// An empty report for a run named `name` (becomes
    /// `BENCH_<name>.json`).
    pub fn new(name: &str, quick: bool) -> Report {
        Report {
            name: name.to_string(),
            quick,
            entries: Vec::new(),
        }
    }

    /// Record one case. `rules` of `None` marks a timing-only row that
    /// the golden check ignores.
    pub fn case(
        &mut self,
        experiment: &'static str,
        case: impl Into<String>,
        rules: Option<u64>,
        time: Duration,
    ) {
        self.entries.push(Entry {
            experiment,
            case: case.into(),
            rules,
            ms: time.as_secs_f64() * 1e3,
        });
    }

    /// The recorded rows, in insertion order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// The run's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `BENCH_<name>.json` artifact: schema-versioned, one object
    /// per entry, written with the kernel's dependency-free JSON writer.
    pub fn to_json(&self) -> String {
        let mut root = Json::object();
        root.push("schema_version", Json::UInt(BENCH_SCHEMA_VERSION as u64));
        root.push("name", Json::str(&self.name));
        root.push("quick", Json::Bool(self.quick));
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut row = Json::object();
                row.push("experiment", Json::str(e.experiment));
                row.push("case", Json::str(&e.case));
                row.push(
                    "rules",
                    match e.rules {
                        Some(n) => Json::UInt(n),
                        None => Json::Null,
                    },
                );
                row.push("ms", Json::Float(e.ms));
                row
            })
            .collect();
        root.push("entries", Json::Array(entries));
        root.to_pretty_string()
    }

    /// The golden summary: one `experiment/case rules=N` line per
    /// deterministic row. Timings are deliberately absent — only output
    /// sizes are stable enough to gate CI on.
    pub fn golden_summary(&self) -> String {
        let mut out = String::from(
            "# tcdm-bench golden rule counts — regenerate with:\n\
             #   cargo run --release -p tcdm-bench --bin experiments -- --quick --write-golden <this file>\n",
        );
        for e in &self.entries {
            if let Some(rules) = e.rules {
                out.push_str(&format!("{}/{} rules={rules}\n", e.experiment, e.case));
            }
        }
        out
    }

    /// Compare this run's deterministic rows against a checked-in golden
    /// summary. Returns every drifted, missing or new row; an empty Ok
    /// means the gate passes.
    pub fn check_golden(&self, golden: &str) -> Result<(), Vec<String>> {
        let mut expected: Vec<(String, u64)> = Vec::new();
        for line in golden.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, rules)) = line.rsplit_once(" rules=") else {
                return Err(vec![format!("golden line not parseable: '{line}'")]);
            };
            match rules.parse::<u64>() {
                Ok(n) => expected.push((key.to_string(), n)),
                Err(_) => return Err(vec![format!("golden count not a number: '{line}'")]),
            }
        }
        let mut problems = Vec::new();
        let mut seen = vec![false; expected.len()];
        for e in &self.entries {
            let Some(rules) = e.rules else { continue };
            let key = format!("{}/{}", e.experiment, e.case);
            match expected.iter().position(|(k, _)| *k == key) {
                None => problems.push(format!("new row not in golden: {key} rules={rules}")),
                Some(i) => {
                    seen[i] = true;
                    let want = expected[i].1;
                    if want != rules {
                        problems.push(format!(
                            "rule-count drift: {key} expected {want}, measured {rules}"
                        ));
                    }
                }
            }
        }
        for (i, (key, want)) in expected.iter().enumerate() {
            if !seen[i] {
                problems.push(format!("golden row missing from run: {key} rules={want}"));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        let mut r = Report::new("test", true);
        r.case("E1", "baskets=100", Some(42), Duration::from_millis(3));
        r.case("E1", "baskets=200", Some(99), Duration::from_millis(7));
        r.case("E7", "timing-only", None, Duration::from_millis(1));
        r
    }

    #[test]
    fn json_is_schema_versioned() {
        let json = report().to_json();
        assert!(json.contains("\"schema_version\": 1"), "{json}");
        assert!(json.contains("\"name\": \"test\""));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"rules\": 42"));
        assert!(json.contains("\"rules\": null"), "timing-only row kept");
    }

    #[test]
    fn golden_roundtrip_passes() {
        let r = report();
        let golden = r.golden_summary();
        assert!(golden.contains("E1/baskets=100 rules=42"));
        assert!(!golden.contains("timing-only"), "no timing rows");
        assert!(r.check_golden(&golden).is_ok());
    }

    #[test]
    fn golden_drift_is_reported() {
        let r = report();
        let golden =
            "# comment\nE1/baskets=100 rules=41\nE1/baskets=200 rules=99\nE9/gone rules=5\n";
        let problems = r.check_golden(golden).unwrap_err();
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems[0].contains("drift"), "{problems:?}");
        assert!(problems[0].contains("expected 41, measured 42"));
        assert!(problems[1].contains("missing"), "{problems:?}");
    }

    #[test]
    fn unparseable_golden_is_an_error() {
        assert!(report().check_golden("E1/baskets=100\n").is_err());
        assert!(report().check_golden("E1/x rules=abc\n").is_err());
    }
}
