//! A minimal, self-contained micro-benchmark harness, so the bench
//! targets run without external crates. It mirrors the criterion idioms
//! the harness previously used — named groups, `bench`/`bench_batched`
//! (setup excluded from timing) — and reports median/min/max over a
//! fixed sample count.
//!
//! Samples default to 10 and can be overridden with `TCDM_BENCH_SAMPLES`
//! (e.g. `TCDM_BENCH_SAMPLES=3 cargo bench` for a smoke run).

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark id.
pub fn samples() -> usize {
    std::env::var("TCDM_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// A named group of related measurements (one table section in the
/// output).
pub struct Group {
    name: String,
}

impl Group {
    /// Open a group; prints its header.
    pub fn new(name: &str) -> Group {
        println!("\n## {name}");
        Group { name: name.into() }
    }

    /// Measure `routine` run against fresh `setup` output each sample;
    /// only `routine` is timed.
    pub fn bench_batched<S, T>(
        &mut self,
        id: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        let n = samples();
        // One untimed warm-up pass.
        std::hint::black_box(routine(setup()));
        let mut times: Vec<Duration> = Vec::with_capacity(n);
        for _ in 0..n {
            let state = setup();
            let t = Instant::now();
            let out = routine(state);
            times.push(t.elapsed());
            std::hint::black_box(out);
        }
        times.sort();
        println!(
            "{}/{id}: median {:.3} ms (min {:.3}, max {:.3}, n={n})",
            self.name,
            ms(times[times.len() / 2]),
            ms(times[0]),
            ms(*times.last().unwrap()),
        );
    }

    /// Measure a self-contained routine (no setup phase).
    pub fn bench<T>(&mut self, id: &str, mut routine: impl FnMut() -> T) {
        self.bench_batched(id, || (), |()| routine());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut g = Group::new("smoke");
        let mut calls = 0usize;
        g.bench_batched(
            "id",
            || 21u64,
            |x| {
                calls += 1;
                x * 2
            },
        );
        // warm-up + samples() timed runs
        assert_eq!(calls, samples() + 1);
    }
}
