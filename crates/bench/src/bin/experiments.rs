//! The experiments harness: regenerates every table of EXPERIMENTS.md
//! (the paper's figures F1–F4 as correctness checks, plus the measurement
//! experiments E1–E16 its architectural claims imply).
//!
//! Run with: `cargo run --release -p tcdm-bench --bin experiments`
//!
//! Flags:
//!
//! ```text
//!   --quick                small workloads, one repetition (CI smoke)
//!   --json <name>          also write the BENCH_<name>.json artifact
//!   --check <golden>       gate on the checked-in rule-count summary
//!   --write-golden <file>  regenerate the golden summary
//! ```
//!
//! Timings inform, rule counts gate: `--check` compares only the
//! deterministic output sizes against the golden file and exits 1 on
//! any drift (see `docs/OBSERVABILITY.md`).

use std::time::{Duration, Instant};

use minerule::algo::{default_pool, SimpleInput};

use minerule::lattice::ExpansionOrder;
use minerule::paper_example::{run_paper_example, FIGURE_2B};
use minerule::{decoupled, MineRuleEngine};
use tcdm_bench::report::Report;
use tcdm_bench::{
    quest_db, retail_db, simple_statement, temporal_statement, temporal_statement_no_mining_cond,
};

fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best = Duration::MAX;
    let mut result = None;
    for _ in 0..n {
        let t = Instant::now();
        let r = f();
        let d = t.elapsed();
        if d < best {
            best = d;
        }
        result = Some(r);
    }
    (best, result.unwrap())
}

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Harness configuration: workload scale plus repetition count.
#[derive(Clone, Copy)]
struct Mode {
    quick: bool,
}

impl Mode {
    /// Repetitions for a best-of timing loop (quick mode measures once —
    /// CI gates on counts, not milliseconds).
    fn reps(&self, full: usize) -> usize {
        if self.quick {
            1
        } else {
            full
        }
    }

    /// Pick a workload size by mode.
    fn size(&self, quick: usize, full: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

const USAGE: &str = "\
usage: experiments [--quick] [--json <name>] [--check <golden>] [--write-golden <file>]

  --quick                small workloads, single repetition (CI smoke mode)
  --json <name>          write results to BENCH_<name>.json (schema-versioned)
  --check <golden>       compare rule counts against a golden summary; exit 1 on drift
  --write-golden <file>  write the golden rule-count summary for --check";

fn main() {
    let mut quick = false;
    let mut json_name: Option<String> = None;
    let mut check: Option<String> = None;
    let mut write_golden: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_name = Some(args.next().unwrap_or_else(|| die("--json needs a name"))),
            "--check" => check = Some(args.next().unwrap_or_else(|| die("--check needs a file"))),
            "--write-golden" => {
                write_golden = Some(
                    args.next()
                        .unwrap_or_else(|| die("--write-golden needs a file")),
                )
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown flag '{other}'\n{USAGE}")),
        }
    }

    let mode = Mode { quick };
    let mut report = Report::new(json_name.as_deref().unwrap_or("local"), quick);

    println!("# Experiment harness — tightly-coupled MINE RULE architecture");
    if quick {
        println!("\n(quick mode: small workloads, single repetition)");
    }
    println!();

    f2_paper_example(&mut report);
    e1_coupling(&mut report, mode);
    e3_borderline(&mut report, mode);
    e4_algorithm_pool(&mut report, mode);
    e5_lattice_order(&mut report, mode);
    e6_generality_overhead(&mut report, mode);
    e7_scaling(&mut report, mode);
    e8_postprocess(&mut report, mode);
    e9_pool_parameters(&mut report, mode);
    e10_worker_scaling(&mut report, mode);
    e11_representation_shootout(&mut report, mode);
    e12_borderline_shootout(&mut report, mode);
    e13_preprocess_cache(&mut report, mode);
    e14_fused_preprocess(&mut report, mode);
    e15_mined_result_cache(&mut report, mode);
    e16_vectorized_execution(&mut report, mode);

    println!("\nall experiments completed.");

    if let Some(name) = &json_name {
        let path = format!("BENCH_{name}.json");
        std::fs::write(&path, report.to_json()).unwrap_or_else(|e| die(&format!("{path}: {e}")));
        println!("wrote {path}");
    }
    if let Some(path) = &write_golden {
        std::fs::write(path, report.golden_summary())
            .unwrap_or_else(|e| die(&format!("{path}: {e}")));
        println!("wrote golden summary to {path}");
    }
    if let Some(path) = &check {
        let golden = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
        match report.check_golden(&golden) {
            Ok(()) => println!("golden check against {path}: ok"),
            Err(problems) => {
                eprintln!("golden check against {path} FAILED:");
                for p in &problems {
                    eprintln!("  {p}");
                }
                std::process::exit(1);
            }
        }
    }
}

fn die(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(2)
}

/// F2 — Figure 2b reproduced exactly.
fn f2_paper_example(report: &mut Report) {
    println!("## F2 — Figure 2b (FilteredOrderedSets), paper vs measured\n");
    let started = Instant::now();
    let (_, outcome) = run_paper_example().expect("paper example");
    let elapsed = started.elapsed();
    println!("| BODY | HEAD | paper s | paper c | measured s | measured c |");
    println!("|---|---|---|---|---|---|");
    for (body, head, s, c) in FIGURE_2B {
        let got = outcome
            .rules
            .iter()
            .find(|r| {
                r.body == body.iter().map(|x| x.to_string()).collect::<Vec<_>>()
                    && r.head == head.iter().map(|x| x.to_string()).collect::<Vec<_>>()
            })
            .expect("rule present");
        println!(
            "| {{{}}} | {{{}}} | {s} | {c} | {} | {} |",
            body.join(", "),
            head.join(", "),
            got.support,
            got.confidence
        );
    }
    assert_eq!(outcome.rules.len(), FIGURE_2B.len());
    report.case(
        "F2",
        "filtered-ordered-sets",
        Some(outcome.rules.len() as u64),
        elapsed,
    );
    println!("\nexact match: {} rules, no extras ✓\n", FIGURE_2B.len());
}

/// E1 — tightly-coupled vs decoupled.
fn e1_coupling(report: &mut Report, mode: Mode) {
    println!("## E1 — tightly-coupled vs decoupled architecture\n");
    println!("| baskets | coupled (ms) | decoupled (ms) | coupled/decoupled |");
    println!("|---|---|---|---|");
    let sizes: &[usize] = if mode.quick {
        &[250, 500]
    } else {
        &[500, 1000, 2000]
    };
    for &n in sizes {
        let (coupled, out) = best_of(mode.reps(3), || {
            let mut db = quest_db(n, 7);
            MineRuleEngine::new()
                .execute(&mut db, &simple_statement(0.03, 0.4))
                .unwrap()
        });
        let (dec, flat) = best_of(mode.reps(3), || {
            let mut db = quest_db(n, 7);
            decoupled::run_decoupled(
                &mut db,
                "SELECT tr, item FROM Baskets",
                0.03,
                0.4,
                "FlatRules",
            )
            .unwrap()
        });
        assert_eq!(out.rules.len(), flat.len(), "architectures agree");
        report.case(
            "E1",
            format!("baskets={n}"),
            Some(out.rules.len() as u64),
            coupled,
        );
        println!(
            "| {n} | {} | {} | {:.2}x |",
            ms(coupled),
            ms(dec),
            coupled.as_secs_f64() / dec.as_secs_f64()
        );
    }
    println!("\n(identical rule inventories asserted per row)\n");
}

/// E13 — the preprocess artifact cache on the paper's §3 observation:
/// cold statement, threshold-refined rerun (must skip `Q0..Q8` via the
/// fingerprint cache) and a data-mutated rerun (must invalidate and go
/// cold again). Replaces E2's hand-rolled warm path
/// (`execute_reusing_preprocessing`) with the engine's own cache.
fn e13_preprocess_cache(report: &mut Report, mode: Mode) {
    println!("## E13 — preprocess artifact cache: cold / threshold-refined / mutated\n");
    let n = mode.size(500, 1500);
    let statement = simple_statement(0.03, 0.4);
    // Tighter thresholds only: same fingerprint, superset rule admits it.
    let refined = simple_statement(0.06, 0.5);
    let preproc_rows = |out: &minerule::MiningOutcome| -> u64 {
        out.preprocess_report
            .executed
            .iter()
            .map(|(_, r)| *r as u64)
            .sum()
    };

    // Cold leg: a fresh database and engine per repetition.
    let (cold, cold_out) = best_of(mode.reps(3), || {
        let mut db = quest_db(n, 9);
        MineRuleEngine::new().execute(&mut db, &statement).unwrap()
    });

    // Warm leg: one engine primes its cache with the cold statement, then
    // reruns with only the EXTRACTING thresholds changed.
    let mut db = quest_db(n, 9);
    let engine = MineRuleEngine::new();
    engine.execute(&mut db, &statement).unwrap();
    let (warm, warm_out) = best_of(mode.reps(3), || engine.execute(&mut db, &refined).unwrap());
    assert_eq!(
        preproc_rows(&warm_out),
        0,
        "the threshold-refined rerun must not execute any Qi step"
    );
    assert!(
        engine.metrics_snapshot().counter("preprocess.cache.hit") > 0,
        "the warm leg must be served by the preprocess cache"
    );
    // Warm rules are bit-identical to an uncached cold run at the
    // refined thresholds.
    let reference = MineRuleEngine::new()
        .with_preprocache(false)
        .execute(&mut quest_db(n, 9), &refined)
        .unwrap();
    assert_eq!(warm_out.rules, reference.rules, "warm rules drifted");

    // Mutated leg: touch the source table, then rerun the cold statement.
    // The version check must force a full (cold) preprocess — measured
    // once, since every repetition would mutate the source again.
    db.execute("INSERT INTO Baskets VALUES (999983, 'item3')")
        .unwrap();
    let (mutated, mutated_out) = best_of(1, || engine.execute(&mut db, &statement).unwrap());
    assert!(
        preproc_rows(&mutated_out) > 0,
        "a mutated source must never be served from the cache"
    );

    report.case("E13", "cold", Some(cold_out.rules.len() as u64), cold);
    report.case(
        "E13",
        "cold preproc-rows",
        Some(preproc_rows(&cold_out)),
        cold_out.timings.preprocess,
    );
    report.case(
        "E13",
        "warm-refined",
        Some(warm_out.rules.len() as u64),
        warm,
    );
    report.case(
        "E13",
        "warm-refined preproc-rows",
        Some(0),
        warm_out.timings.preprocess,
    );
    report.case(
        "E13",
        "mutated",
        Some(mutated_out.rules.len() as u64),
        mutated,
    );
    report.case(
        "E13",
        "mutated preproc-rows",
        Some(preproc_rows(&mutated_out)),
        mutated_out.timings.preprocess,
    );

    println!("| leg | total (ms) | preprocess (ms) | preproc rows | rules |");
    println!("|---|---|---|---|---|");
    for (leg, total, out) in [
        ("cold", cold, &cold_out),
        ("warm (thresholds refined)", warm, &warm_out),
        ("mutated source (rerun)", mutated, &mutated_out),
    ] {
        println!(
            "| {leg} | {} | {} | {} | {} |",
            ms(total),
            ms(out.timings.preprocess),
            preproc_rows(out),
            out.rules.len()
        );
    }
    println!(
        "\nwarm rerun skips Q0..Q8 entirely (cache hit; preprocess rows 0) — \
         {:.2}x faster end to end than the cold statement; the mutated \
         source invalidates by table version and goes cold again ✓\n",
        cold.as_secs_f64() / warm.as_secs_f64()
    );
}

/// E14 — the fused simple-class preprocess pass (cost planner, the
/// default) vs the step-by-step Appendix-A program (naive planner).
/// The fused pass streams the encoded intermediates out of one source
/// scan instead of materialising each `Qi` as a catalog table; rules
/// stay bit-identical and the preprocess wall time must drop.
fn e14_fused_preprocess(report: &mut Report, mode: Mode) {
    use relational::PlannerMode;

    println!("## E14 — fused preprocess program (cost) vs step-by-step Q1..Q8 (naive)\n");
    println!("| baskets | planner | preprocess (ms) | fused steps | preproc rows | rules |");
    println!("|---|---|---|---|---|---|");
    let sizes: &[usize] = if mode.quick {
        &[250, 500]
    } else {
        &[500, 1500, 3000]
    };
    let statement = simple_statement(0.03, 0.4);
    for &n in sizes {
        let mut runs = Vec::new();
        // Timing gates below need more than quick mode's single shot:
        // always take the best of three.
        for (name, planner) in [("naive", PlannerMode::Naive), ("cost", PlannerMode::Cost)] {
            let (_, out) = best_of(3, || {
                let mut db = quest_db(n, 23);
                MineRuleEngine::new()
                    .with_planner(planner)
                    .execute(&mut db, &statement)
                    .unwrap()
            });
            let preproc_rows: usize = out.preprocess_report.executed.iter().map(|(_, r)| r).sum();
            report.case(
                "E14",
                format!("baskets={n} planner={name}"),
                Some(out.rules.len() as u64),
                out.timings.preprocess,
            );
            println!(
                "| {n} | {name} | {} | {} | {preproc_rows} | {} |",
                ms(out.timings.preprocess),
                out.preprocess_report.fused_steps,
                out.rules.len()
            );
            runs.push(out);
        }
        let (naive, fused) = (&runs[0], &runs[1]);
        assert_eq!(naive.preprocess_report.fused_steps, 0);
        assert_eq!(
            fused.preprocess_report.fused_steps, 6,
            "the cost planner must fuse the simple-class program"
        );
        assert_eq!(
            naive.rules, fused.rules,
            "baskets={n}: fused preprocessing changed the rules"
        );
        assert!(
            fused.timings.preprocess < naive.timings.preprocess,
            "baskets={n}: fused preprocess must beat the step-by-step \
             program ({:?} vs {:?})",
            fused.timings.preprocess,
            naive.timings.preprocess
        );
        println!(
            "| {n} | speedup (preprocess) | {:.2}x | | | |",
            naive.timings.preprocess.as_secs_f64() / fused.timings.preprocess.as_secs_f64()
        );
    }
    println!("\n(bit-identical rules and a measured preprocess wall-time drop gated per size)\n");
}

/// E15 — the mined-result cache on an interactive refine loop: cold
/// mine, tightened support, tightened confidence, then a small source
/// delta. Pure threshold refinements must be answered entirely from the
/// cache (zero core-operator movement, gated ≥10× faster than the cold
/// mine); the delta is re-mined incrementally. Every warm stage's rules
/// are asserted bit-identical to an uncached cold mine at the same
/// thresholds and snapshot.
fn e15_mined_result_cache(report: &mut Report, mode: Mode) {
    println!("## E15 — mined-result cache: refine loop (cold / tighten / delta)\n");
    // Slightly larger than E13's quick size: the warm legs are
    // postprocess-bound, so a bigger cold mine keeps the 10x gate far
    // from timer noise even on loaded CI runners.
    let n = mode.size(800, 1500);

    /// Counters that prove the core operator ran (or did not).
    fn core_work(engine: &MineRuleEngine) -> Vec<(String, u64)> {
        engine
            .metrics_snapshot()
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("core.level.") || name.starts_with("core.path."))
            .map(|(name, value)| (name.clone(), *value))
            .collect()
    }
    /// Bit-identical to an uncached cold mine over an equal snapshot.
    fn assert_cold_identical(
        stage: &str,
        rules: &[minerule::DecodedRule],
        n: usize,
        statement: &str,
        mutations: &[&str],
    ) {
        let mut fresh = quest_db(n, 9);
        for dml in mutations {
            fresh.execute(dml).unwrap();
        }
        let reference = MineRuleEngine::new()
            .with_preprocache(false)
            .with_minecache(false)
            .execute(&mut fresh, statement)
            .unwrap();
        assert_eq!(rules, reference.rules, "{stage}: warm rules drifted");
    }

    let cold_stmt = simple_statement(0.03, 0.4);
    let support_stmt = simple_statement(0.06, 0.4);
    let confidence_stmt = simple_statement(0.06, 0.5);
    const DELTA: &str = "INSERT INTO Baskets VALUES (999983, 'item3')";

    // Cold leg: a fresh database and engine per repetition. The timing
    // gate below needs more than quick mode's single shot: always take
    // the best of three.
    let (cold, cold_out) = best_of(3, || {
        let mut db = quest_db(n, 9);
        MineRuleEngine::new().execute(&mut db, &cold_stmt).unwrap()
    });

    // Warm legs: one engine primes both caches with the cold statement,
    // then refines thresholds only.
    let mut db = quest_db(n, 9);
    let engine = MineRuleEngine::new();
    engine.execute(&mut db, &cold_stmt).unwrap();

    let work_before = core_work(&engine);
    let (support, support_out) = best_of(3, || engine.execute(&mut db, &support_stmt).unwrap());
    let (confidence, confidence_out) =
        best_of(3, || engine.execute(&mut db, &confidence_stmt).unwrap());
    assert_eq!(
        work_before,
        core_work(&engine),
        "pure threshold refinement must not touch the core operator"
    );
    assert_cold_identical("refine-support", &support_out.rules, n, &support_stmt, &[]);
    assert_cold_identical(
        "refine-confidence",
        &confidence_out.rules,
        n,
        &confidence_stmt,
        &[],
    );
    let refine_speedup = cold.as_secs_f64() / support.as_secs_f64();
    assert!(
        refine_speedup >= 10.0,
        "threshold refinement must be >=10x faster than the cold mine \
         ({cold:?} cold vs {support:?} refined)"
    );

    // Delta leg: one inserted row, re-mined incrementally — measured
    // once, since repeating would re-mutate the source.
    let work_before = core_work(&engine);
    db.execute(DELTA).unwrap();
    let (delta, delta_out) = best_of(1, || engine.execute(&mut db, &confidence_stmt).unwrap());
    assert_eq!(
        work_before,
        core_work(&engine),
        "the incremental re-mine must not touch the core operator"
    );
    assert_cold_identical("delta", &delta_out.rules, n, &confidence_stmt, &[DELTA]);

    let snapshot = engine.metrics_snapshot();
    assert_eq!(snapshot.counter("core.minecache.refine"), 2);
    assert_eq!(snapshot.counter("core.minecache.delta"), 1);
    assert_eq!(snapshot.counter("core.minecache.miss"), 1);

    report.case("E15", "cold", Some(cold_out.rules.len() as u64), cold);
    report.case(
        "E15",
        "refine-support",
        Some(support_out.rules.len() as u64),
        support,
    );
    report.case(
        "E15",
        "refine-confidence",
        Some(confidence_out.rules.len() as u64),
        confidence,
    );
    report.case("E15", "delta", Some(delta_out.rules.len() as u64), delta);

    println!("| leg | total (ms) | rules |");
    println!("|---|---|---|");
    for (leg, total, out) in [
        ("cold (s=0.03 c=0.4)", cold, &cold_out),
        ("refine support (s=0.06)", support, &support_out),
        ("refine confidence (c=0.5)", confidence, &confidence_out),
        ("delta (+1 row, re-mined)", delta, &delta_out),
    ] {
        println!("| {leg} | {} | {} |", ms(total), out.rules.len());
    }
    println!(
        "\nrefined reruns are answered from the mined-result cache — zero \
         core-operator work asserted, {refine_speedup:.1}x faster than the \
         cold mine (gated >=10x); the one-row delta is re-mined \
         incrementally, bit-identical to a cold mine over the mutated \
         snapshot ✓\n"
    );
}

/// E16 — vectorized columnar batch execution (`\set exec vector`) vs the
/// row-at-a-time path. The scan leg runs selective scan+filter shapes
/// over the quest `Baskets` table — a needle filter, a filtered
/// DISTINCT, and a filtered wide GROUP BY — where the vector path's
/// fused scan+filter evaluates the predicate over the base table's rows
/// *before* cloning them, so dropped rows are never materialised. Rows
/// must be bit-identical (content and order) and the combined scan-leg
/// speedup is gated at >=2x at full size. The mining leg re-runs the
/// E14-style simple-class workload under both exec modes: bit-identical
/// rules, with `relational.vector.*` counters minted only by the vector
/// run.
fn e16_vectorized_execution(report: &mut Report, mode: Mode) {
    use relational::ExecMode;

    println!("## E16 — vectorized batch execution vs row-at-a-time\n");
    let n = mode.size(1000, 20000);

    let queries = [
        (
            "needle",
            "SELECT COUNT(*) FROM Baskets WHERE tr % 1000 = 500",
        ),
        (
            "distinct",
            "SELECT DISTINCT item FROM Baskets WHERE tr % 10 = 0",
        ),
        (
            "group",
            "SELECT tr, COUNT(*) FROM Baskets WHERE tr % 7 = 0 GROUP BY tr",
        ),
    ];
    println!("| query | rows | row (ms) | vector (ms) | speedup |");
    println!("|---|---|---|---|---|");
    let mut row_total = Duration::ZERO;
    let mut vector_total = Duration::ZERO;
    let mut result_rows = 0u64;
    for (name, sql) in queries {
        let mut legs = Vec::new();
        for exec in [ExecMode::Row, ExecMode::Vector] {
            let mut db = quest_db(n, 55);
            db.set_exec(exec);
            // The timing gate below needs more than quick mode's single
            // shot: always take the best of three.
            let (t, rs) = best_of(3, || db.query(sql).unwrap());
            legs.push((t, rs.rows().len(), format!("{:?}", rs.rows())));
        }
        let ((row, rows, row_rows), (vector, _, vector_rows)) = (&legs[0], &legs[1]);
        assert_eq!(
            vector_rows, row_rows,
            "{name}: vector rows or order drifted from the row path"
        );
        result_rows += *rows as u64;
        println!(
            "| {name} | {rows} | {} | {} | {:.2}x |",
            ms(*row),
            ms(*vector),
            row.as_secs_f64() / vector.as_secs_f64()
        );
        row_total += *row;
        vector_total += *vector;
    }
    let speedup = row_total.as_secs_f64() / vector_total.as_secs_f64();
    println!(
        "| total | {result_rows} | {} | {} | {speedup:.2}x |",
        ms(row_total),
        ms(vector_total)
    );
    if !mode.quick {
        assert!(
            speedup >= 2.0,
            "the vector path must be >=2x faster on the scan suite at full \
             size ({row_total:?} row vs {vector_total:?} vector)"
        );
    }
    report.case("E16", "scan exec=row", Some(result_rows), row_total);
    report.case("E16", "scan exec=vector", Some(result_rows), vector_total);

    // Mining leg: the simple-class workload under both exec modes.
    let statement = simple_statement(0.03, 0.4);
    let mine_n = mode.size(250, 3000);
    let mut outs = Vec::new();
    for exec in [ExecMode::Row, ExecMode::Vector] {
        let engine = MineRuleEngine::new().with_exec(exec);
        let (t, out) = best_of(3, || {
            let mut db = quest_db(mine_n, 23);
            engine.execute(&mut db, &statement).unwrap()
        });
        let minted = engine
            .metrics_snapshot()
            .counters
            .keys()
            .any(|k| k.starts_with("relational.vector."));
        assert_eq!(
            minted,
            exec == ExecMode::Vector,
            "vector counters must be minted by the vector run only"
        );
        report.case(
            "E16",
            format!("mine baskets={mine_n} exec={exec}"),
            Some(out.rules.len() as u64),
            t,
        );
        println!(
            "\nmine baskets={mine_n} exec={exec}: total {} ms, {} rules",
            ms(t),
            out.rules.len()
        );
        outs.push(out);
    }
    assert_eq!(
        outs[0].rules, outs[1].rules,
        "mining rules drifted between exec modes"
    );
    assert_eq!(
        outs[0].preprocess_report.executed, outs[1].preprocess_report.executed,
        "per-step preprocess row counts drifted between exec modes"
    );
    println!(
        "\n(bit-identical scan rows and mined rules across exec modes; \
         scan-leg speedup {speedup:.2}x{})\n",
        if mode.quick {
            ""
        } else {
            ", gated >=2x at full size"
        }
    );
}

/// E3 — the borderline: elementary rules in SQL vs in the core.
fn e3_borderline(report: &mut Report, mode: Mode) {
    println!("## E3 — borderline ablation: elementary rules in SQL (Q8) vs in core\n");
    println!("| customers | variant | preprocess (ms) | core (ms) | total (ms) | rules |");
    println!("|---|---|---|---|---|---|");
    let sizes: &[usize] = if mode.quick { &[150] } else { &[200, 400] };
    for &n in sizes {
        for (variant, stmt) in [
            ("mining cond in SQL", temporal_statement(0.05, 0.2)),
            (
                "elementary in core",
                temporal_statement_no_mining_cond(0.05, 0.2),
            ),
        ] {
            let (total, out) = best_of(mode.reps(3), || {
                let mut db = retail_db(n, 5);
                MineRuleEngine::new().execute(&mut db, &stmt).unwrap()
            });
            report.case(
                "E3",
                format!("customers={n} {variant}"),
                Some(out.rules.len() as u64),
                total,
            );
            println!(
                "| {n} | {variant} | {} | {} | {} | {} |",
                ms(out.timings.preprocess),
                ms(out.timings.core),
                ms(out.timings.total()),
                out.rules.len()
            );
        }
    }
    println!("\n(the SQL variant shifts elementary-rule work from core to preprocess)\n");
}

/// E4 — the algorithm pool across support thresholds.
fn e4_algorithm_pool(report: &mut Report, mode: Mode) {
    let baskets = mode.size(600, 1500);
    println!("## E4 — algorithm pool on T8.I3 Quest data ({baskets} baskets)\n");
    let db = quest_db(baskets, 77);
    let rs = {
        let mut db = db;
        db.query("SELECT tr, item FROM Baskets").unwrap()
    };
    let mut groups: Vec<Vec<u32>> = Vec::new();
    let mut current_tr = -1i64;
    let mut item_ids = std::collections::HashMap::new();
    for row in rs.rows() {
        let tr = row[0].as_int().unwrap();
        if tr != current_tr {
            groups.push(Vec::new());
            current_tr = tr;
        }
        let next = item_ids.len() as u32;
        let id = *item_ids.entry(row[1].to_string()).or_insert(next);
        groups.last_mut().unwrap().push(id);
    }
    for g in &mut groups {
        g.sort_unstable();
        g.dedup();
    }
    let total = groups.len() as u32;

    let supports: &[f64] = if mode.quick {
        &[0.05, 0.02]
    } else {
        &[0.05, 0.02, 0.01]
    };
    println!("| algorithm | {} | itemsets @lowest |", {
        let cells: Vec<String> = supports.iter().map(|s| format!("s={s} (ms)")).collect();
        cells.join(" | ")
    });
    println!("|---|{}---|", "---|".repeat(supports.len()));
    for miner in default_pool() {
        let mut cells = Vec::new();
        let mut last_count = 0;
        for &s in supports {
            let input = SimpleInput {
                groups: groups.clone(),
                total_groups: total,
                min_groups: ((total as f64 * s).ceil() as u32).max(1),
            };
            let (d, large) = best_of(mode.reps(3), || miner.mine(&input));
            last_count = large.len();
            report.case(
                "E4",
                format!("{} s={s}", miner.name()),
                Some(large.len() as u64),
                d,
            );
            cells.push(ms(d));
        }
        println!(
            "| {} | {} | {last_count} |",
            miner.name(),
            cells.join(" | ")
        );
    }
    println!();
}

/// E5 — lattice expansion order.
fn e5_lattice_order(report: &mut Report, mode: Mode) {
    println!("## E5 — lattice expansion order (§4.3.2 optimisation)\n");
    let customers = mode.size(120, 250);
    let statement = "MINE RULE Wide AS \
        SELECT DISTINCT 1..n item AS BODY, 1..3 item AS HEAD, SUPPORT, CONFIDENCE \
        WHERE BODY.price >= 0 \
        FROM Purchase GROUP BY customer \
        EXTRACTING RULES WITH SUPPORT: 0.08, CONFIDENCE: 0.05";
    println!("| order | core (ms) | rules |");
    println!("|---|---|---|");
    let mut rule_sets = Vec::new();
    for (name, key, order) in [
        (
            "min-cardinality parent (paper)",
            "min-parent",
            ExpansionOrder::MinParent,
        ),
        ("fixed body-first", "body-first", ExpansionOrder::BodyFirst),
    ] {
        let (_, out) = best_of(mode.reps(3), || {
            let mut db = retail_db(customers, 13);
            let mut engine = MineRuleEngine::new();
            engine.core.order = order;
            engine.execute(&mut db, statement).unwrap()
        });
        report.case("E5", key, Some(out.rules.len() as u64), out.timings.core);
        println!(
            "| {name} | {} | {} |",
            ms(out.timings.core),
            out.rules.len()
        );
        rule_sets.push(out.rules);
    }
    assert_eq!(rule_sets[0], rule_sets[1], "orders agree on results");
    println!("\n(identical rule sets asserted)\n");
}

/// E6 — generality overhead.
fn e6_generality_overhead(report: &mut Report, mode: Mode) {
    println!("## E6 — simple core vs forced general lattice (same statement)\n");
    let baskets = mode.size(300, 800);
    let statement = "MINE RULE Both AS \
        SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE \
        FROM Baskets GROUP BY tr \
        EXTRACTING RULES WITH SUPPORT: 0.03, CONFIDENCE: 0.3";
    println!("| path | core (ms) | rules |");
    println!("|---|---|---|");
    let mut rule_sets = Vec::new();
    for (name, key, forced) in [
        ("simple pool (apriori)", "simple", false),
        ("general lattice", "general", true),
    ] {
        let (_, out) = best_of(mode.reps(3), || {
            let mut db = quest_db(baskets, 17);
            let mut engine = MineRuleEngine::new();
            engine.core.force_general = forced;
            engine.execute(&mut db, statement).unwrap()
        });
        report.case("E6", key, Some(out.rules.len() as u64), out.timings.core);
        println!(
            "| {name} | {} | {} |",
            ms(out.timings.core),
            out.rules.len()
        );
        rule_sets.push(out.rules);
    }
    assert_eq!(rule_sets[0], rule_sets[1], "paths agree on results");
    println!("\n(identical rule sets asserted)\n");
}

/// E7 — scaling sweeps.
fn e7_scaling(report: &mut Report, mode: Mode) {
    println!("## E7 — scaling\n");
    println!("### groups (support 0.03)\n");
    println!("| baskets | total (ms) | preprocess (ms) | core (ms) | rules |");
    println!("|---|---|---|---|---|");
    let sizes: &[usize] = if mode.quick {
        &[250, 500, 1000]
    } else {
        &[250, 500, 1000, 2000, 4000]
    };
    for &n in sizes {
        let (total, out) = best_of(mode.reps(2), || {
            let mut db = quest_db(n, 19);
            MineRuleEngine::new()
                .execute(&mut db, &simple_statement(0.03, 0.4))
                .unwrap()
        });
        report.case(
            "E7",
            format!("baskets={n}"),
            Some(out.rules.len() as u64),
            total,
        );
        println!(
            "| {n} | {} | {} | {} | {} |",
            ms(out.timings.total()),
            ms(out.timings.preprocess),
            ms(out.timings.core),
            out.rules.len()
        );
    }
    println!("\n### support threshold (1000 baskets)\n");
    println!("| support | total (ms) | core (ms) | rules |");
    println!("|---|---|---|---|");
    let supports: &[f64] = if mode.quick {
        &[0.08, 0.04]
    } else {
        &[0.08, 0.04, 0.02, 0.01]
    };
    for &s in supports {
        let (total, out) = best_of(mode.reps(2), || {
            let mut db = quest_db(1000, 19);
            MineRuleEngine::new()
                .execute(&mut db, &simple_statement(s, 0.4))
                .unwrap()
        });
        report.case(
            "E7",
            format!("support={s}"),
            Some(out.rules.len() as u64),
            total,
        );
        println!(
            "| {s} | {} | {} | {} |",
            ms(out.timings.total()),
            ms(out.timings.core),
            out.rules.len()
        );
    }
    println!();
}

/// E9 — pool parameter ablations.
fn e9_pool_parameters(report: &mut Report, mode: Mode) {
    use minerule::algo::dhp::Dhp;
    use minerule::algo::partition::Partition;
    use minerule::algo::sampling::Sampling;
    use minerule::algo::ItemsetMiner;

    let baskets = mode.size(500, 1500);
    println!("## E9 — pool parameter ablations ({baskets} baskets, s=0.02)\n");
    let data = datagen::generate_quest(&datagen::QuestConfig {
        transactions: baskets,
        avg_transaction_size: 8.0,
        avg_pattern_size: 3.0,
        patterns: 50,
        items: 200,
        seed: 101,
        ..datagen::QuestConfig::default()
    });
    let total = data.transactions.len() as u32;
    let input = SimpleInput {
        groups: data.transactions,
        total_groups: total,
        min_groups: ((total as f64 * 0.02).ceil() as u32).max(1),
    };

    println!("### partition count\n");
    println!("| partitions | sequential (ms) | parallel (ms) |");
    println!("|---|---|---|");
    let partition_counts: &[usize] = if mode.quick {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16]
    };
    for &parts in partition_counts {
        let (seq, large) = best_of(mode.reps(3), || {
            Partition {
                partitions: parts,
                parallel: false,
            }
            .mine(&input)
        });
        let (par, _) = best_of(mode.reps(3), || {
            Partition {
                partitions: parts,
                parallel: true,
            }
            .mine(&input)
        });
        report.case(
            "E9",
            format!("partition parts={parts}"),
            Some(large.len() as u64),
            seq,
        );
        println!("| {parts} | {} | {} |", ms(seq), ms(par));
    }

    println!("\n### DHP hash-table size\n");
    println!("| buckets | time (ms) |");
    println!("|---|---|");
    let bucket_sizes: &[usize] = if mode.quick {
        &[1 << 12]
    } else {
        &[1 << 8, 1 << 12, 1 << 16, 1 << 20]
    };
    for &buckets in bucket_sizes {
        let (d, large) = best_of(mode.reps(3), || Dhp { buckets }.mine(&input));
        report.case(
            "E9",
            format!("dhp buckets={buckets}"),
            Some(large.len() as u64),
            d,
        );
        println!("| {buckets} | {} |", ms(d));
    }

    println!("\n### sampling fraction\n");
    println!("| fraction | time (ms) |");
    println!("|---|---|");
    let fractions: &[f64] = if mode.quick {
        &[0.5]
    } else {
        &[0.1, 0.25, 0.5, 0.75]
    };
    for &fraction in fractions {
        let miner = Sampling {
            sample_fraction: fraction,
            ..Sampling::default()
        };
        let (d, large) = best_of(mode.reps(3), || miner.mine(&input));
        report.case(
            "E9",
            format!("sampling fraction={fraction}"),
            Some(large.len() as u64),
            d,
        );
        println!("| {fraction} | {} |", ms(d));
    }
    println!();
}

/// E10 — worker scaling of the sharded mining executor.
fn e10_worker_scaling(report: &mut Report, mode: Mode) {
    println!("## E10 — sharded executor: core phase vs worker count\n");
    println!(
        "(host has {} hardware threads)\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!("| workers | core (ms) | shard busy (ms) | speedup vs 1 | rules |");
    println!("|---|---|---|---|---|");
    let baskets = mode.size(500, 1500);
    let worker_counts: &[usize] = if mode.quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut baseline: Option<(Duration, Vec<minerule::DecodedRule>)> = None;
    for &workers in worker_counts {
        let (_, out) = best_of(mode.reps(3), || {
            let mut db = quest_db(baskets, 19);
            MineRuleEngine::new()
                .with_workers(workers)
                .execute(&mut db, &simple_statement(0.02, 0.4))
                .unwrap()
        });
        let core = out.timings.core;
        let speedup = match &baseline {
            None => {
                baseline = Some((core, out.rules.clone()));
                1.0
            }
            Some((base, base_rules)) => {
                assert_eq!(
                    &out.rules, base_rules,
                    "rules invariant at {workers} workers"
                );
                base.as_secs_f64() / core.as_secs_f64()
            }
        };
        report.case(
            "E10",
            format!("workers={workers}"),
            Some(out.rules.len() as u64),
            core,
        );
        println!(
            "| {workers} | {} | {} | {speedup:.2}x | {} |",
            ms(core),
            ms(out.timings.core_shard_busy()),
            out.rules.len()
        );
    }
    println!("\n(identical rule sets asserted per worker count)\n");
}

/// E11 — gid-set representation shootout: list-only vs hybrid (`auto`)
/// on a dense quest workload (bitsets should win) and a sparse
/// retail-shaped workload (`auto` must stay on lists and hold parity).
fn e11_representation_shootout(report: &mut Report, mode: Mode) {
    use minerule::algo::apriori::AprioriGidList;
    use minerule::algo::eclat::Eclat;
    use minerule::algo::{sort_itemsets, GidSetRepr, ItemsetMiner, ShardExec};

    println!("## E11 — gid-set representation shootout (list vs hybrid)\n");

    // Dense: small catalog, long baskets — most gid-lists exceed
    // universe/32 elements, so `auto` picks the bitset words.
    let baskets = mode.size(400, 2000);
    let dense = datagen::generate_quest(&datagen::QuestConfig {
        transactions: baskets,
        avg_transaction_size: 12.0,
        avg_pattern_size: 4.0,
        patterns: 10,
        items: 50,
        seed: 211,
        ..datagen::QuestConfig::default()
    });
    let total = dense.transactions.len() as u32;
    let dense_input = SimpleInput {
        groups: dense.transactions,
        total_groups: total,
        min_groups: ((total as f64 * 0.05).ceil() as u32).max(1),
    };

    // Sparse: the retail generator with a wide catalog and short baskets
    // keeps every gid-list far below the density threshold — `auto` must
    // stay on sorted lists.
    let retail = datagen::generate_retail(&datagen::RetailConfig {
        customers: mode.size(150, 800),
        items_per_date: 4.0,
        catalog: 1000,
        expensive_items: 100,
        seed: 223,
        ..datagen::RetailConfig::default()
    });
    let mut groups: Vec<Vec<u32>> = Vec::new();
    let mut last_tr = 0i64;
    for row in &retail.rows {
        if row.tr != last_tr {
            groups.push(Vec::new());
            last_tr = row.tr;
        }
        let k: u32 = row.item["item".len()..].parse().expect("item id");
        groups.last_mut().expect("open group").push(k);
    }
    let total = groups.len() as u32;
    let sparse_input = SimpleInput {
        groups,
        total_groups: total,
        min_groups: ((total as f64 * 0.005).ceil() as u32).max(2),
    };

    println!(
        "(quest-dense: {} baskets over 50 items; retail-sparse: {} baskets over 1000 items)\n",
        dense_input.groups.len(),
        sparse_input.groups.len()
    );
    println!("| workload | algorithm | list (ms) | hybrid (ms) | itemsets |");
    println!("|---|---|---|---|---|");
    for (workload, input) in [
        ("quest-dense", &dense_input),
        ("retail-sparse", &sparse_input),
    ] {
        let miners: [(&str, &dyn ItemsetMiner); 2] =
            [("apriori-gidlist", &AprioriGidList), ("eclat", &Eclat)];
        for (alg, miner) in miners {
            let mut cells = Vec::new();
            let mut outputs = Vec::new();
            for (repr_name, repr) in [("list", GidSetRepr::List), ("hybrid", GidSetRepr::Auto)] {
                let exec = ShardExec::sequential().with_gidset_repr(repr);
                let (d, mut large) = best_of(mode.reps(3), || miner.mine_sharded(input, &exec));
                sort_itemsets(&mut large);
                report.case(
                    "E11",
                    format!("{workload} {alg} repr={repr_name}"),
                    Some(large.len() as u64),
                    d,
                );
                cells.push(ms(d));
                outputs.push(large);
            }
            assert_eq!(
                outputs[0], outputs[1],
                "representations disagree on {workload}/{alg}"
            );
            println!(
                "| {workload} | {alg} | {} | {} | {} |",
                cells[0],
                cells[1],
                outputs[0].len()
            );
        }
    }
    println!("\n(identical itemsets asserted per representation pair)\n");
}

/// E12 — borderline shootout: compiled vs interpreted expression
/// execution for the relational half of the pipeline. The mined rules
/// and preprocessor row counts must be bit-identical; only the
/// preprocess/postprocess wall-clock moves.
fn e12_borderline_shootout(report: &mut Report, mode: Mode) {
    use relational::SqlExec;

    println!("## E12 — borderline shootout: compiled vs interpreted SQL execution\n");
    println!("| workload | sqlexec | preprocess (ms) | total (ms) | rules | preproc rows |");
    println!("|---|---|---|---|---|---|");

    let quest_n = mode.size(300, 1500);
    let retail_n = mode.size(150, 400);
    // One workload row: (name, database builder, size, seed, statement).
    type Workload = (
        &'static str,
        fn(usize, u64) -> relational::Database,
        usize,
        u64,
        String,
    );
    let builders: [Workload; 2] = [
        (
            "quest-simple",
            quest_db,
            quest_n,
            31,
            simple_statement(0.03, 0.4),
        ),
        (
            "retail-temporal",
            retail_db,
            retail_n,
            5,
            temporal_statement(0.05, 0.2),
        ),
    ];
    for (workload, build, n, seed, stmt) in &builders {
        let mut runs = Vec::new();
        for exec in [SqlExec::Interpreted, SqlExec::Compiled] {
            let (total, out) = best_of(mode.reps(3), || {
                let mut db = build(*n, *seed);
                MineRuleEngine::new()
                    .with_sqlexec(exec)
                    .execute(&mut db, stmt)
                    .unwrap()
            });
            let preproc_rows: usize = out.preprocess_report.executed.iter().map(|(_, r)| r).sum();
            report.case(
                "E12",
                format!("{workload} sqlexec={exec}"),
                Some(out.rules.len() as u64),
                total,
            );
            report.case(
                "E12",
                format!("{workload} sqlexec={exec} preproc-rows"),
                Some(preproc_rows as u64),
                out.timings.preprocess,
            );
            println!(
                "| {workload} | {exec} | {} | {} | {} | {preproc_rows} |",
                ms(out.timings.preprocess),
                ms(total),
                out.rules.len()
            );
            runs.push(out);
        }
        let (interpreted, compiled) = (&runs[0], &runs[1]);
        assert_eq!(
            interpreted.rules, compiled.rules,
            "{workload}: modes disagree on rules"
        );
        assert_eq!(
            interpreted.preprocess_report.executed, compiled.preprocess_report.executed,
            "{workload}: modes disagree on preprocessor row counts"
        );
        println!(
            "| {workload} | speedup (preprocess) | {:.2}x | | | |",
            interpreted.timings.preprocess.as_secs_f64()
                / compiled.timings.preprocess.as_secs_f64()
        );
    }
    println!("\n(identical rules and preprocessor row counts asserted per workload)\n");
}

/// E8 — postprocessing cost vs rule count.
fn e8_postprocess(report: &mut Report, mode: Mode) {
    println!("## E8 — postprocessing (store + decode) vs rule count\n");
    println!("| support | rules | postprocess (ms) |");
    println!("|---|---|---|");
    let baskets = mode.size(300, 800);
    let supports: &[f64] = if mode.quick {
        &[0.05, 0.02]
    } else {
        &[0.05, 0.02, 0.01]
    };
    for &s in supports {
        let (_, out) = best_of(mode.reps(2), || {
            let mut db = quest_db(baskets, 29);
            MineRuleEngine::new()
                .execute(&mut db, &simple_statement(s, 0.1))
                .unwrap()
        });
        report.case(
            "E8",
            format!("support={s}"),
            Some(out.rules.len() as u64),
            out.timings.postprocess,
        );
        println!(
            "| {s} | {} | {} |",
            out.rules.len(),
            ms(out.timings.postprocess)
        );
    }
    println!();
}
