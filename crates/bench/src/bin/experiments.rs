//! The experiments harness: regenerates every table of EXPERIMENTS.md
//! (the paper's figures F1–F4 as correctness checks, plus the measurement
//! experiments E1–E8 its architectural claims imply).
//!
//! Run with: `cargo run --release -p tcdm-bench --bin experiments`

use std::time::{Duration, Instant};

use minerule::algo::{default_pool, SimpleInput};

use minerule::lattice::ExpansionOrder;
use minerule::paper_example::{run_paper_example, FIGURE_2B};
use minerule::{decoupled, MineRuleEngine};
use tcdm_bench::{
    quest_db, retail_db, simple_statement, temporal_statement, temporal_statement_no_mining_cond,
};

fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best = Duration::MAX;
    let mut result = None;
    for _ in 0..n {
        let t = Instant::now();
        let r = f();
        let d = t.elapsed();
        if d < best {
            best = d;
        }
        result = Some(r);
    }
    (best, result.unwrap())
}

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn main() {
    println!("# Experiment harness — tightly-coupled MINE RULE architecture\n");

    f2_paper_example();
    e1_coupling();
    e2_shared_preprocessing();
    e3_borderline();
    e4_algorithm_pool();
    e5_lattice_order();
    e6_generality_overhead();
    e7_scaling();
    e8_postprocess();
    e9_pool_parameters();
    e10_worker_scaling();

    println!("\nall experiments completed.");
}

/// F2 — Figure 2b reproduced exactly.
fn f2_paper_example() {
    println!("## F2 — Figure 2b (FilteredOrderedSets), paper vs measured\n");
    let (_, outcome) = run_paper_example().expect("paper example");
    println!("| BODY | HEAD | paper s | paper c | measured s | measured c |");
    println!("|---|---|---|---|---|---|");
    for (body, head, s, c) in FIGURE_2B {
        let got = outcome
            .rules
            .iter()
            .find(|r| {
                r.body == body.iter().map(|x| x.to_string()).collect::<Vec<_>>()
                    && r.head == head.iter().map(|x| x.to_string()).collect::<Vec<_>>()
            })
            .expect("rule present");
        println!(
            "| {{{}}} | {{{}}} | {s} | {c} | {} | {} |",
            body.join(", "),
            head.join(", "),
            got.support,
            got.confidence
        );
    }
    assert_eq!(outcome.rules.len(), FIGURE_2B.len());
    println!("\nexact match: {} rules, no extras ✓\n", FIGURE_2B.len());
}

/// E1 — tightly-coupled vs decoupled.
fn e1_coupling() {
    println!("## E1 — tightly-coupled vs decoupled architecture\n");
    println!("| baskets | coupled (ms) | decoupled (ms) | coupled/decoupled |");
    println!("|---|---|---|---|");
    for &n in &[500usize, 1000, 2000] {
        let (coupled, out) = best_of(3, || {
            let mut db = quest_db(n, 7);
            MineRuleEngine::new()
                .execute(&mut db, &simple_statement(0.03, 0.4))
                .unwrap()
        });
        let (dec, flat) = best_of(3, || {
            let mut db = quest_db(n, 7);
            decoupled::run_decoupled(
                &mut db,
                "SELECT tr, item FROM Baskets",
                0.03,
                0.4,
                "FlatRules",
            )
            .unwrap()
        });
        assert_eq!(out.rules.len(), flat.len(), "architectures agree");
        println!(
            "| {n} | {} | {} | {:.2}x |",
            ms(coupled),
            ms(dec),
            coupled.as_secs_f64() / dec.as_secs_f64()
        );
    }
    println!("\n(identical rule inventories asserted per row)\n");
}

/// E2 — shared preprocessing.
fn e2_shared_preprocessing() {
    println!("## E2 — shared preprocessing (§3)\n");
    let statement = simple_statement(0.03, 0.4);
    let (cold, _) = best_of(3, || {
        let mut db = quest_db(1500, 9);
        MineRuleEngine::new().execute(&mut db, &statement).unwrap()
    });
    let mut db = quest_db(1500, 9);
    MineRuleEngine::new().execute(&mut db, &statement).unwrap();
    let (warm, _) = best_of(3, || {
        MineRuleEngine::new()
            .execute_reusing_preprocessing(&mut db, &statement)
            .unwrap()
    });
    println!("| run | total (ms) |");
    println!("|---|---|");
    println!("| cold (full Q0..Q4 + core + post) | {} |", ms(cold));
    println!("| warm (reused encoded tables) | {} |", ms(warm));
    println!(
        "\npreprocessing reuse saves {:.1}% of the run ✓\n",
        (1.0 - warm.as_secs_f64() / cold.as_secs_f64()) * 100.0
    );
}

/// E3 — the borderline: elementary rules in SQL vs in the core.
fn e3_borderline() {
    println!("## E3 — borderline ablation: elementary rules in SQL (Q8) vs in core\n");
    println!("| customers | variant | preprocess (ms) | core (ms) | total (ms) | rules |");
    println!("|---|---|---|---|---|---|");
    for &n in &[200usize, 400] {
        for (variant, stmt) in [
            ("mining cond in SQL", temporal_statement(0.05, 0.2)),
            (
                "elementary in core",
                temporal_statement_no_mining_cond(0.05, 0.2),
            ),
        ] {
            let (_, out) = best_of(3, || {
                let mut db = retail_db(n, 5);
                MineRuleEngine::new().execute(&mut db, &stmt).unwrap()
            });
            println!(
                "| {n} | {variant} | {} | {} | {} | {} |",
                ms(out.timings.preprocess),
                ms(out.timings.core),
                ms(out.timings.total()),
                out.rules.len()
            );
        }
    }
    println!("\n(the SQL variant shifts elementary-rule work from core to preprocess)\n");
}

/// E4 — the algorithm pool across support thresholds.
fn e4_algorithm_pool() {
    println!("## E4 — algorithm pool on T8.I3 Quest data (1500 baskets)\n");
    let db = quest_db(1500, 77);
    let rs = {
        let mut db = db;
        db.query("SELECT tr, item FROM Baskets").unwrap()
    };
    let mut groups: Vec<Vec<u32>> = Vec::new();
    let mut current_tr = -1i64;
    let mut item_ids = std::collections::HashMap::new();
    for row in rs.rows() {
        let tr = row[0].as_int().unwrap();
        if tr != current_tr {
            groups.push(Vec::new());
            current_tr = tr;
        }
        let next = item_ids.len() as u32;
        let id = *item_ids.entry(row[1].to_string()).or_insert(next);
        groups.last_mut().unwrap().push(id);
    }
    for g in &mut groups {
        g.sort_unstable();
        g.dedup();
    }
    let total = groups.len() as u32;

    println!("| algorithm | s=0.05 (ms) | s=0.02 (ms) | s=0.01 (ms) | itemsets @0.01 |");
    println!("|---|---|---|---|---|");
    for miner in default_pool() {
        let mut cells = Vec::new();
        let mut last_count = 0;
        for &s in &[0.05f64, 0.02, 0.01] {
            let input = SimpleInput {
                groups: groups.clone(),
                total_groups: total,
                min_groups: ((total as f64 * s).ceil() as u32).max(1),
            };
            let (d, large) = best_of(3, || miner.mine(&input));
            last_count = large.len();
            cells.push(ms(d));
        }
        println!(
            "| {} | {} | {} | {} | {last_count} |",
            miner.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    println!();
}

/// E5 — lattice expansion order.
fn e5_lattice_order() {
    println!("## E5 — lattice expansion order (§4.3.2 optimisation)\n");
    let statement = "MINE RULE Wide AS \
        SELECT DISTINCT 1..n item AS BODY, 1..3 item AS HEAD, SUPPORT, CONFIDENCE \
        WHERE BODY.price >= 0 \
        FROM Purchase GROUP BY customer \
        EXTRACTING RULES WITH SUPPORT: 0.08, CONFIDENCE: 0.05";
    println!("| order | core (ms) | rules |");
    println!("|---|---|---|");
    let mut rule_sets = Vec::new();
    for (name, order) in [
        ("min-cardinality parent (paper)", ExpansionOrder::MinParent),
        ("fixed body-first", ExpansionOrder::BodyFirst),
    ] {
        let (_, out) = best_of(3, || {
            let mut db = retail_db(250, 13);
            let mut engine = MineRuleEngine::new();
            engine.core.order = order;
            engine.execute(&mut db, statement).unwrap()
        });
        println!(
            "| {name} | {} | {} |",
            ms(out.timings.core),
            out.rules.len()
        );
        rule_sets.push(out.rules);
    }
    assert_eq!(rule_sets[0], rule_sets[1], "orders agree on results");
    println!("\n(identical rule sets asserted)\n");
}

/// E6 — generality overhead.
fn e6_generality_overhead() {
    println!("## E6 — simple core vs forced general lattice (same statement)\n");
    let statement = "MINE RULE Both AS \
        SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE \
        FROM Baskets GROUP BY tr \
        EXTRACTING RULES WITH SUPPORT: 0.03, CONFIDENCE: 0.3";
    println!("| path | core (ms) | rules |");
    println!("|---|---|---|");
    let mut rule_sets = Vec::new();
    for (name, forced) in [("simple pool (apriori)", false), ("general lattice", true)] {
        let (_, out) = best_of(3, || {
            let mut db = quest_db(800, 17);
            let mut engine = MineRuleEngine::new();
            engine.core.force_general = forced;
            engine.execute(&mut db, statement).unwrap()
        });
        println!(
            "| {name} | {} | {} |",
            ms(out.timings.core),
            out.rules.len()
        );
        rule_sets.push(out.rules);
    }
    assert_eq!(rule_sets[0], rule_sets[1], "paths agree on results");
    println!("\n(identical rule sets asserted)\n");
}

/// E7 — scaling sweeps.
fn e7_scaling() {
    println!("## E7 — scaling\n");
    println!("### groups (support 0.03)\n");
    println!("| baskets | total (ms) | preprocess (ms) | core (ms) | rules |");
    println!("|---|---|---|---|---|");
    for &n in &[250usize, 500, 1000, 2000, 4000] {
        let (_, out) = best_of(2, || {
            let mut db = quest_db(n, 19);
            MineRuleEngine::new()
                .execute(&mut db, &simple_statement(0.03, 0.4))
                .unwrap()
        });
        println!(
            "| {n} | {} | {} | {} | {} |",
            ms(out.timings.total()),
            ms(out.timings.preprocess),
            ms(out.timings.core),
            out.rules.len()
        );
    }
    println!("\n### support threshold (1000 baskets)\n");
    println!("| support | total (ms) | core (ms) | rules |");
    println!("|---|---|---|---|");
    for &s in &[0.08f64, 0.04, 0.02, 0.01] {
        let (_, out) = best_of(2, || {
            let mut db = quest_db(1000, 19);
            MineRuleEngine::new()
                .execute(&mut db, &simple_statement(s, 0.4))
                .unwrap()
        });
        println!(
            "| {s} | {} | {} | {} |",
            ms(out.timings.total()),
            ms(out.timings.core),
            out.rules.len()
        );
    }
    println!();
}

/// E9 — pool parameter ablations.
fn e9_pool_parameters() {
    use minerule::algo::dhp::Dhp;
    use minerule::algo::partition::Partition;
    use minerule::algo::sampling::Sampling;
    use minerule::algo::ItemsetMiner;

    println!("## E9 — pool parameter ablations (1500 baskets, s=0.02)\n");
    let data = datagen::generate_quest(&datagen::QuestConfig {
        transactions: 1500,
        avg_transaction_size: 8.0,
        avg_pattern_size: 3.0,
        patterns: 50,
        items: 200,
        seed: 101,
        ..datagen::QuestConfig::default()
    });
    let total = data.transactions.len() as u32;
    let input = SimpleInput {
        groups: data.transactions,
        total_groups: total,
        min_groups: ((total as f64 * 0.02).ceil() as u32).max(1),
    };

    println!("### partition count\n");
    println!("| partitions | sequential (ms) | parallel (ms) |");
    println!("|---|---|---|");
    for &parts in &[1usize, 2, 4, 8, 16] {
        let (seq, _) = best_of(3, || {
            Partition {
                partitions: parts,
                parallel: false,
            }
            .mine(&input)
        });
        let (par, _) = best_of(3, || {
            Partition {
                partitions: parts,
                parallel: true,
            }
            .mine(&input)
        });
        println!("| {parts} | {} | {} |", ms(seq), ms(par));
    }

    println!("\n### DHP hash-table size\n");
    println!("| buckets | time (ms) |");
    println!("|---|---|");
    for &buckets in &[1usize << 8, 1 << 12, 1 << 16, 1 << 20] {
        let (d, _) = best_of(3, || Dhp { buckets }.mine(&input));
        println!("| {buckets} | {} |", ms(d));
    }

    println!("\n### sampling fraction\n");
    println!("| fraction | time (ms) |");
    println!("|---|---|");
    for &fraction in &[0.1f64, 0.25, 0.5, 0.75] {
        let miner = Sampling {
            sample_fraction: fraction,
            ..Sampling::default()
        };
        let (d, _) = best_of(3, || miner.mine(&input));
        println!("| {fraction} | {} |", ms(d));
    }
    println!();
}

/// E10 — worker scaling of the sharded mining executor.
fn e10_worker_scaling() {
    println!("## E10 — sharded executor: core phase vs worker count\n");
    println!(
        "(host has {} hardware threads)\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!("| workers | core (ms) | shard busy (ms) | speedup vs 1 | rules |");
    println!("|---|---|---|---|---|");
    let mut baseline: Option<(Duration, Vec<minerule::DecodedRule>)> = None;
    for &workers in &[1usize, 2, 4, 8] {
        let (_, out) = best_of(3, || {
            let mut db = quest_db(1500, 19);
            MineRuleEngine::new()
                .with_workers(workers)
                .execute(&mut db, &simple_statement(0.02, 0.4))
                .unwrap()
        });
        let core = out.timings.core;
        let speedup = match &baseline {
            None => {
                baseline = Some((core, out.rules.clone()));
                1.0
            }
            Some((base, base_rules)) => {
                assert_eq!(
                    &out.rules, base_rules,
                    "rules invariant at {workers} workers"
                );
                base.as_secs_f64() / core.as_secs_f64()
            }
        };
        println!(
            "| {workers} | {} | {} | {speedup:.2}x | {} |",
            ms(core),
            ms(out.timings.core_shard_busy()),
            out.rules.len()
        );
    }
    println!("\n(identical rule sets asserted per worker count)\n");
}

/// E8 — postprocessing cost vs rule count.
fn e8_postprocess() {
    println!("## E8 — postprocessing (store + decode) vs rule count\n");
    println!("| support | rules | postprocess (ms) |");
    println!("|---|---|---|");
    for &s in &[0.05f64, 0.02, 0.01] {
        let (_, out) = best_of(2, || {
            let mut db = quest_db(800, 29);
            MineRuleEngine::new()
                .execute(&mut db, &simple_statement(s, 0.1))
                .unwrap()
        });
        println!(
            "| {s} | {} | {} |",
            out.rules.len(),
            ms(out.timings.postprocess)
        );
    }
    println!();
}
