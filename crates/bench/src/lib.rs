//! Shared workload setup for the benchmark harness and the `experiments`
//! binary. Each helper builds a fresh in-memory database so benchmarks
//! measure the mining pipeline, not test scaffolding.

use datagen::{generate_quest, generate_retail, load_quest, QuestConfig, RetailConfig};
use relational::Database;

pub mod bench;
pub mod report;

/// A Quest basket database (`Baskets (tr INT, item VARCHAR)`).
pub fn quest_db(transactions: usize, seed: u64) -> Database {
    let data = generate_quest(&QuestConfig {
        transactions,
        avg_transaction_size: 8.0,
        avg_pattern_size: 3.0,
        patterns: 50,
        items: 200,
        seed,
        ..QuestConfig::default()
    });
    let mut db = Database::new();
    load_quest(&data, &mut db, "Baskets").expect("quest data loads");
    db
}

/// A retail database (`Purchase` with the Figure 1 schema).
pub fn retail_db(customers: usize, seed: u64) -> Database {
    let data = generate_retail(&RetailConfig {
        customers,
        dates_per_customer: 4,
        items_per_date: 2.5,
        catalog: 40,
        expensive_items: 12,
        seed,
        ..RetailConfig::default()
    });
    let mut db = Database::new();
    data.load(&mut db, "Purchase").expect("retail data loads");
    db
}

/// A simple-class statement over the Quest baskets.
pub fn simple_statement(min_support: f64, min_confidence: f64) -> String {
    format!(
        "MINE RULE BenchRules AS \
         SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE \
         FROM Baskets GROUP BY tr \
         EXTRACTING RULES WITH SUPPORT: {min_support}, CONFIDENCE: {min_confidence}"
    )
}

/// The paper-shaped temporal statement over the retail table.
pub fn temporal_statement(min_support: f64, min_confidence: f64) -> String {
    format!(
        "MINE RULE BenchTemporal AS \
         SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE \
         WHERE BODY.price >= 100 AND HEAD.price < 100 \
         FROM Purchase GROUP BY customer \
         CLUSTER BY date HAVING BODY.date < HEAD.date \
         EXTRACTING RULES WITH SUPPORT: {min_support}, CONFIDENCE: {min_confidence}"
    )
}

/// The same temporal task without the mining condition (E3 borderline
/// ablation: elementary rules built in-core instead of by Q8).
pub fn temporal_statement_no_mining_cond(min_support: f64, min_confidence: f64) -> String {
    format!(
        "MINE RULE BenchTemporal AS \
         SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE \
         FROM Purchase GROUP BY customer \
         CLUSTER BY date HAVING BODY.date < HEAD.date \
         EXTRACTING RULES WITH SUPPORT: {min_support}, CONFIDENCE: {min_confidence}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minerule::MineRuleEngine;

    #[test]
    fn workloads_run_end_to_end() {
        let mut db = quest_db(100, 1);
        let out = MineRuleEngine::new()
            .execute(&mut db, &simple_statement(0.05, 0.3))
            .unwrap();
        assert!(out.preprocess_report.total_groups == 100);

        let mut db = retail_db(40, 1);
        let out = MineRuleEngine::new()
            .execute(&mut db, &temporal_statement(0.05, 0.2))
            .unwrap();
        assert!(out.used_general);
    }
}
